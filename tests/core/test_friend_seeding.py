"""Tests for random-friend seeding (paper §5.1).

A newborn copies its friend's link cache and learns the friend itself;
the MR* ingestion rule applies to the copied entries.
"""

from __future__ import annotations

from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams


def build_sim(**protocol_kwargs):
    return GuessSimulation(
        SystemParams(network_size=40, query_rate=0.0),
        ProtocolParams(cache_size=15, **protocol_kwargs),
        seed=6,
        health_sample_interval=None,
    )


class TestSeedFromFriend:
    def test_newborn_knows_friend_and_its_cache(self):
        sim = build_sim()
        friend = sim.live_good_peers[0]
        friend_known = set(friend.link_cache.addresses())
        newborn = sim._spawn_peer(10.0, malicious=False, friend=friend)
        newborn_known = set(newborn.link_cache.addresses())
        assert friend.address in newborn_known
        # Everything else it knows came from the friend's cache.
        assert newborn_known - {friend.address} <= friend_known

    def test_copies_are_independent(self):
        sim = build_sim()
        friend = sim.live_good_peers[0]
        newborn = sim._spawn_peer(10.0, malicious=False, friend=friend)
        shared = [
            a for a in newborn.link_cache.addresses()
            if a in friend.link_cache and a != friend.address
        ]
        assert shared, "expected at least one copied entry"
        address = shared[0]
        newborn.link_cache.get(address).num_res = 999
        assert friend.link_cache.get(address).num_res != 999

    def test_reset_num_results_applies_to_copied_entries(self):
        sim = build_sim(reset_num_results=True)
        friend = sim.live_good_peers[0]
        # Give the friend's entries nonzero NumRes to be distrusted.
        for entry in friend.link_cache.entries():
            entry.num_res = 7
        newborn = sim._spawn_peer(10.0, malicious=False, friend=friend)
        for address in newborn.link_cache.addresses():
            if address == friend.address:
                continue
            assert newborn.link_cache.get(address).num_res == 0

    def test_without_reset_num_results_hearsay_kept(self):
        sim = build_sim()
        friend = sim.live_good_peers[0]
        for entry in friend.link_cache.entries():
            entry.num_res = 7
        newborn = sim._spawn_peer(10.0, malicious=False, friend=friend)
        copied = [
            newborn.link_cache.get(a)
            for a in newborn.link_cache.addresses()
            if a != friend.address
        ]
        assert copied
        assert all(entry.num_res == 7 for entry in copied)

    def test_friend_entry_fields(self):
        sim = build_sim()
        friend = sim.live_good_peers[0]
        newborn = sim._spawn_peer(25.0, malicious=False, friend=friend)
        entry = newborn.link_cache.get(friend.address)
        assert entry is not None
        assert entry.ts == 25.0
        assert entry.num_files == friend.num_files

    def test_seeding_respects_capacity(self):
        sim = GuessSimulation(
            SystemParams(network_size=40, query_rate=0.0),
            ProtocolParams(cache_size=3),
            seed=6,
            health_sample_interval=None,
        )
        friend = sim.live_good_peers[0]
        newborn = sim._spawn_peer(10.0, malicious=False, friend=friend)
        assert len(newborn.link_cache) <= 3
