"""Tests for the maintenance-ping cycle (paper §2.2) via GuessSimulation."""

from __future__ import annotations

import pytest

from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams


def build_sim(**protocol_overrides):
    protocol = ProtocolParams(cache_size=10, **protocol_overrides)
    sim = GuessSimulation(
        SystemParams(network_size=30, query_rate=0.0),
        protocol,
        seed=2,
        health_sample_interval=None,
    )
    return sim


class TestDoPing:
    def test_dead_target_evicted_and_counted(self):
        sim = build_sim()
        pinger = sim.live_good_peers[0]
        victim_address = next(iter(pinger.link_cache.addresses()))
        # Kill the victim out-of-band: unregister it from the transport.
        sim.transport.unregister(victim_address)
        sim._do_ping(pinger, now=1.0)
        # The PingProbe policy is Random; ping until the corpse is hit.
        for _ in range(100):
            if victim_address not in pinger.link_cache:
                break
            sim._do_ping(pinger, now=1.0)
        assert victim_address not in pinger.link_cache
        assert sim.collector.dead_pings >= 1

    def test_live_target_ts_refreshed(self):
        sim = build_sim(ping_probe="LRU")  # stalest first: deterministic
        pinger = sim.live_good_peers[0]
        target = pinger.choose_ping_target(5.0)
        sim._do_ping(pinger, now=5.0)
        assert pinger.link_cache.get(target.address).ts == 5.0

    def test_pong_entries_imported(self):
        sim = build_sim()
        pinger = sim.live_good_peers[0]
        before = set(pinger.link_cache.addresses())
        # Ping repeatedly; pongs should eventually teach new addresses
        # (the cache holds 10 of 29 possible peers, so new ones exist).
        for i in range(50):
            sim._do_ping(pinger, now=float(i))
        after = set(pinger.link_cache.addresses())
        assert after - before, "pings should import pong entries"

    def test_empty_cache_ping_is_noop(self):
        sim = build_sim()
        pinger = sim.live_good_peers[0]
        pinger.link_cache.clear()
        sim._do_ping(pinger, now=1.0)  # must not raise
        assert sim.collector.pings_sent == 1 or sim.collector.pings_sent == 0

    def test_refused_ping_evicts_without_backoff(self):
        sim = build_sim()
        pinger = sim.live_good_peers[0]
        target_address = next(iter(pinger.link_cache.addresses()))
        target = sim.peer(target_address)
        # Exhaust the target's capacity for this second.
        for _ in range(200):
            if target._limiter.would_exceed(1.0):
                break
            target._limiter.record(1.0)
        # Force the pinger to ping exactly this target by clearing others.
        for address in list(pinger.link_cache.addresses()):
            if address != target_address:
                pinger.link_cache.evict(address)
        sim._do_ping(pinger, now=1.0)
        assert target_address not in pinger.link_cache
        assert sim.collector.dead_pings == 0  # refusal is not a death

    def test_refused_ping_kept_with_backoff(self):
        sim = build_sim(do_backoff=True)
        pinger = sim.live_good_peers[0]
        target_address = next(iter(pinger.link_cache.addresses()))
        target = sim.peer(target_address)
        for _ in range(200):
            if target._limiter.would_exceed(1.0):
                break
            target._limiter.record(1.0)
        for address in list(pinger.link_cache.addresses()):
            if address != target_address:
                pinger.link_cache.evict(address)
        sim._do_ping(pinger, now=1.0)
        assert target_address in pinger.link_cache


class TestPingCycleScheduling:
    def test_pings_happen_roughly_at_rate(self):
        sim = build_sim(ping_interval=10.0)
        sim.run(300.0)
        report = sim.report()
        expected = 30 * 300.0 / 10.0
        assert report.pings_sent == pytest.approx(expected, rel=0.25)

    def test_dead_peers_stop_pinging(self):
        sim = GuessSimulation(
            SystemParams(
                network_size=20, query_rate=0.0, lifespan_multiplier=0.05
            ),
            ProtocolParams(cache_size=5, ping_interval=5.0),
            seed=4,
            health_sample_interval=None,
        )
        sim.run(1000.0)
        # If corpses kept pinging, the engine would keep their recurring
        # events alive forever; pending events stay bounded instead.
        assert sim.engine.pending < 20 * 6
