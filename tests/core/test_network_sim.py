"""Tests for the GuessSimulation orchestrator."""

from __future__ import annotations

import pytest

from repro.core.network_sim import GuessSimulation
from repro.core.params import BadPongBehavior, ProtocolParams, SystemParams
from repro.errors import SimulationError


def small_sim(**kwargs):
    system = kwargs.pop(
        "system", SystemParams(network_size=50, query_rate=0.02)
    )
    protocol = kwargs.pop("protocol", ProtocolParams(cache_size=10))
    kwargs.setdefault("seed", 3)
    return GuessSimulation(system, protocol, **kwargs)


class TestBootstrap:
    def test_population_size(self):
        sim = small_sim()
        assert len(sim.live_peers) == 50

    def test_caches_seeded(self):
        sim = small_sim()
        sizes = [len(p.link_cache) for p in sim.live_peers]
        assert all(s >= 1 for s in sizes)

    def test_seed_entries_point_at_live_peers(self):
        sim = small_sim()
        live = {p.address for p in sim.live_peers}
        for peer in sim.live_peers:
            assert set(peer.link_cache.addresses()) <= live

    def test_no_self_pointers(self):
        sim = small_sim()
        for peer in sim.live_peers:
            assert peer.address not in peer.link_cache

    def test_seed_size_respects_cache_capacity(self):
        sim = GuessSimulation(
            SystemParams(network_size=500, query_rate=0.0),
            ProtocolParams(cache_size=3),
            seed=1,
        )
        assert all(len(p.link_cache) <= 3 for p in sim.live_peers)

    def test_malicious_fraction(self):
        sim = GuessSimulation(
            SystemParams(
                network_size=100, percent_bad_peers=20.0, query_rate=0.0
            ),
            ProtocolParams(cache_size=10),
            seed=2,
        )
        bad = sum(1 for p in sim.live_peers if p.malicious)
        assert bad == 20


class TestChurn:
    def test_population_constant_under_churn(self):
        sim = small_sim(
            system=SystemParams(
                network_size=50, query_rate=0.0, lifespan_multiplier=0.05
            )
        )
        sim.run(2000.0)
        assert len(sim.live_peers) == 50

    def test_births_match_deaths(self):
        sim = small_sim(
            system=SystemParams(
                network_size=50, query_rate=0.0, lifespan_multiplier=0.05
            )
        )
        sim.run(2000.0)
        report = sim.report()
        assert report.deaths > 0
        # Every recorded death spawns a birth in the same instant.
        assert report.births == report.deaths

    def test_dead_addresses_never_live_again(self):
        sim = small_sim(
            system=SystemParams(
                network_size=50, query_rate=0.0, lifespan_multiplier=0.05
            )
        )
        sim.run(1500.0)
        live = {p.address for p in sim.live_peers}
        assert live.isdisjoint(sim.directory.dead_addresses)

    def test_newborns_have_seeded_caches(self):
        sim = small_sim(
            system=SystemParams(
                network_size=50, query_rate=0.0, lifespan_multiplier=0.05
            )
        )
        sim.run(2000.0)
        newborns = [p for p in sim.live_peers if p.birth_time > 0]
        assert newborns
        assert any(len(p.link_cache) > 0 for p in newborns)


class TestDeterminism:
    def test_same_seed_same_results(self):
        reports = []
        for _ in range(2):
            sim = small_sim(seed=42)
            sim.run(400.0)
            reports.append(sim.report())
        a, b = reports
        assert a.queries == b.queries
        assert a.total_probes == b.total_probes
        assert a.satisfied_queries == b.satisfied_queries
        assert a.loads == b.loads

    def test_different_seed_different_results(self):
        totals = set()
        for seed in (1, 2, 3):
            sim = small_sim(seed=seed)
            sim.run(400.0)
            totals.add(sim.report().total_probes)
        assert len(totals) > 1


class TestQueriesAndMetrics:
    def test_queries_recorded(self):
        sim = small_sim()
        sim.run(600.0)
        report = sim.report()
        assert report.queries > 0
        assert report.total_probes >= report.queries

    def test_warmup_discards_early_queries(self):
        sim_all = small_sim(seed=5, warmup=0.0)
        sim_all.run(600.0)
        sim_warm = small_sim(seed=5, warmup=300.0)
        sim_warm.run(600.0)
        assert sim_warm.report().queries < sim_all.report().queries

    def test_health_samples_collected(self):
        sim = small_sim(health_sample_interval=50.0)
        sim.run(600.0)
        report = sim.report()
        assert len(report.health_samples) >= 10
        assert 0.0 <= report.mean_fraction_live <= 1.0

    def test_health_sampling_disabled(self):
        sim = small_sim(health_sample_interval=None)
        sim.run(300.0)
        assert sim.report().health_samples == ()

    def test_report_only_once(self):
        sim = small_sim()
        sim.run(100.0)
        sim.report()
        with pytest.raises(SimulationError):
            sim.report()

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            small_sim().run(-1.0)

    def test_loads_cover_all_peers_ever(self):
        sim = small_sim(
            system=SystemParams(
                network_size=50, query_rate=0.02, lifespan_multiplier=0.1
            )
        )
        sim.run(800.0)
        report = sim.report()
        ever_born = report.births + 50
        assert len(report.loads) == ever_born


class TestOverlaySnapshot:
    def test_snapshot_covers_live_peers(self):
        sim = small_sim()
        sim.run(200.0)
        snapshot = sim.snapshot_overlay()
        assert len(snapshot.live) == 50

    def test_seeded_network_is_connected(self):
        sim = GuessSimulation(
            SystemParams(network_size=200, query_rate=0.0),
            ProtocolParams(cache_size=20),
            seed=9,
        )
        assert sim.snapshot_overlay().largest_component_size() == 200

    def test_maintained_network_stays_connected(self):
        sim = GuessSimulation(
            SystemParams(network_size=100, query_rate=0.0),
            ProtocolParams(cache_size=20, ping_interval=10.0),
            seed=9,
        )
        sim.run(1200.0)
        lcc = sim.snapshot_overlay().largest_component_size()
        assert lcc >= 95  # near-full connectivity with tight maintenance


class TestMaliciousComposition:
    def test_malicious_peers_respond_but_never_answer(self):
        sim = GuessSimulation(
            SystemParams(
                network_size=60,
                percent_bad_peers=25.0,
                query_rate=0.05,
                bad_pong_behavior=BadPongBehavior.DEAD,
            ),
            ProtocolParams(cache_size=10),
            seed=4,
        )
        sim.run(600.0)
        for peer in sim.live_peers:
            if peer.malicious:
                assert peer.results_served == 0

    def test_roster_matches_peers(self):
        sim = GuessSimulation(
            SystemParams(network_size=60, percent_bad_peers=25.0, query_rate=0.0),
            ProtocolParams(cache_size=10),
            seed=4,
        )
        sim.run(500.0)
        live_bad = {p.address for p in sim.live_peers if p.malicious}
        live_good = {p.address for p in sim.live_peers if not p.malicious}
        assert sim.directory.live_malicious == live_bad
        assert sim.directory.live_good == live_good
