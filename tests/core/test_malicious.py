"""Tests for malicious peers and the attack directory."""

from __future__ import annotations

import random

import pytest

from repro.core.malicious import (
    FAKE_NUM_FILES,
    FAKE_NUM_RES,
    AttackDirectory,
    MaliciousPeer,
)
from repro.core.messages import Ping, Query
from repro.core.params import BadPongBehavior
from tests.core.helpers import make_malicious_peer


@pytest.fixture
def rng():
    return random.Random(31)


class TestAttackDirectory:
    def test_birth_and_death_rosters(self):
        directory = AttackDirectory()
        directory.record_birth(1, malicious=False)
        directory.record_birth(2, malicious=True)
        assert directory.live_good == {1}
        assert directory.live_malicious == {2}
        directory.record_death(2)
        assert directory.live_malicious == set()
        assert directory.dead_addresses == [2]

    def test_sample_dead_uses_ghosts_before_any_death(self, rng):
        directory = AttackDirectory(ghost_addresses=[100, 101])
        picks = directory.sample_dead(rng, 5)
        assert len(picks) == 5
        assert set(picks) <= {100, 101}

    def test_sample_dead_prefers_real_corpses(self, rng):
        directory = AttackDirectory(ghost_addresses=[100])
        directory.record_death(7)
        assert set(directory.sample_dead(rng, 4)) == {7}

    def test_sample_dead_empty_without_ghosts(self, rng):
        assert AttackDirectory().sample_dead(rng, 3) == []

    def test_sample_malicious_excludes_self(self, rng):
        directory = AttackDirectory()
        for a in (1, 2, 3):
            directory.record_birth(a, malicious=True)
        picks = directory.sample_malicious(rng, 10, exclude=2)
        assert 2 not in picks
        assert set(picks) == {1, 3}

    def test_sample_malicious_subset(self, rng):
        directory = AttackDirectory()
        for a in range(10):
            directory.record_birth(a, malicious=True)
        picks = directory.sample_malicious(rng, 3, exclude=0)
        assert len(picks) == 3
        assert len(set(picks)) == 3

    def test_sample_good(self, rng):
        directory = AttackDirectory()
        directory.record_birth(1, malicious=False)
        directory.record_birth(2, malicious=False)
        assert set(directory.sample_good(rng, 10)) == {1, 2}

    def test_sample_zero(self, rng):
        directory = AttackDirectory(ghost_addresses=[1])
        assert directory.sample_dead(rng, 0) == []
        assert directory.sample_malicious(rng, 0, exclude=0) == []
        assert directory.sample_good(rng, 0) == []


class TestMaliciousPeer:
    def test_advertises_fake_files(self):
        peer = make_malicious_peer(1)
        assert peer.num_files == FAKE_NUM_FILES
        assert peer.malicious is True

    def test_returns_no_results(self):
        peer = make_malicious_peer(1)
        _, reply = peer.receive_probe(Query(sender=2, target_file=1), 1.0)
        assert reply.num_results == 0

    def test_dead_behavior_pong(self):
        directory = AttackDirectory(ghost_addresses=[900])
        directory.record_death(55)
        peer = make_malicious_peer(
            1, behavior=BadPongBehavior.DEAD, directory=directory
        )
        _, pong = peer.receive_probe(Ping(sender=2), 1.0)
        assert pong.entries
        assert all(e.address == 55 for e in pong.entries)
        assert all(e.num_files == FAKE_NUM_FILES for e in pong.entries)
        assert all(e.num_res == FAKE_NUM_RES for e in pong.entries)

    def test_bad_behavior_pong_points_at_accomplices(self):
        directory = AttackDirectory()
        for a in (10, 11, 12):
            directory.record_birth(a, malicious=True)
        peer = make_malicious_peer(
            10, behavior=BadPongBehavior.BAD, directory=directory
        )
        _, pong = peer.receive_probe(Ping(sender=2), 1.0)
        addresses = {e.address for e in pong.entries}
        assert addresses <= {11, 12}
        assert 10 not in addresses

    def test_good_behavior_pong_points_at_good_peers(self):
        directory = AttackDirectory()
        directory.record_birth(5, malicious=False)
        peer = make_malicious_peer(
            1, behavior=BadPongBehavior.GOOD, directory=directory
        )
        _, pong = peer.receive_probe(Ping(sender=2), 1.0)
        assert {e.address for e in pong.entries} == {5}

    def test_poisoned_entries_look_fresh(self):
        directory = AttackDirectory(ghost_addresses=[99])
        peer = make_malicious_peer(
            1, behavior=BadPongBehavior.DEAD, directory=directory
        )
        _, pong = peer.receive_probe(Ping(sender=2), 42.0)
        assert all(e.ts == 42.0 for e in pong.entries)

    def test_query_reply_carries_poisoned_pong(self):
        directory = AttackDirectory(ghost_addresses=[99])
        peer = make_malicious_peer(
            1, behavior=BadPongBehavior.DEAD, directory=directory
        )
        _, reply = peer.receive_probe(Query(sender=2, target_file=3), 1.0)
        assert reply.num_results == 0
        assert all(e.address == 99 for e in reply.pong.entries)
