"""Tests for the per-query scratch cache."""

from __future__ import annotations

from repro.core.query_cache import QueryCache
from tests.conftest import make_entry


class TestAdmission:
    def test_add_and_lookup(self):
        cache = QueryCache(owner=0)
        assert cache.add(make_entry(1))
        assert 1 in cache
        assert len(cache) == 1

    def test_owner_never_admitted(self):
        cache = QueryCache(owner=7)
        assert not cache.add(make_entry(7))

    def test_excluded_addresses_never_admitted(self):
        cache = QueryCache(owner=0, excluded={3, 4})
        assert not cache.add(make_entry(3))
        assert cache.add(make_entry(5))

    def test_duplicate_not_readmitted(self):
        cache = QueryCache(owner=0)
        assert cache.add(make_entry(1))
        assert not cache.add(make_entry(1))
        assert len(cache) == 1

    def test_seen_address_not_admitted(self):
        cache = QueryCache(owner=0)
        cache.mark_seen(9)
        assert not cache.add(make_entry(9))
        assert cache.was_seen(9)


class TestConsumption:
    def test_pop_removes_and_marks_seen(self):
        cache = QueryCache(owner=0)
        cache.add(make_entry(1))
        entry = cache.pop(1)
        assert entry.address == 1
        assert 1 not in cache
        assert not cache.add(make_entry(1))  # seen now

    def test_pop_missing_returns_none(self):
        assert QueryCache(owner=0).pop(5) is None

    def test_entries_and_addresses(self):
        cache = QueryCache(owner=0)
        cache.add(make_entry(2))
        cache.add(make_entry(4))
        assert sorted(e.address for e in cache.entries()) == [2, 4]
        assert sorted(cache.addresses()) == [2, 4]

    def test_clear_resets_everything(self):
        cache = QueryCache(owner=0, excluded={3})
        cache.add(make_entry(1))
        cache.mark_seen(9)
        cache.clear()
        assert len(cache) == 0
        # After clear (query over) the scratch space is reusable; only the
        # owner stays excluded.
        assert cache.add(make_entry(9))
        assert cache.add(make_entry(3))
        assert not cache.add(make_entry(0))
