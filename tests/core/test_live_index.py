"""LiveAddressIndex: Fenwick-backed order-statistic sampling.

The index exists to replace ``list(peers_dict.keys())[k]`` in the
simulation's friend sampling, so the property that matters is *exact*
agreement with that spelling — same ``k`` in, same address out — under
arbitrary interleavings of births and deaths, across compactions.
"""

from __future__ import annotations

import random

import pytest

from repro.core.live_index import LiveAddressIndex


class TestBasics:
    def test_empty(self):
        index = LiveAddressIndex()
        assert len(index) == 0
        assert 1 not in index
        with pytest.raises(IndexError):
            index.kth(0)

    def test_add_and_kth(self):
        index = LiveAddressIndex()
        for address in (10, 20, 30):
            index.add(address)
        assert len(index) == 3
        assert [index.kth(k) for k in range(3)] == [10, 20, 30]
        assert 20 in index

    def test_double_add_rejected(self):
        index = LiveAddressIndex()
        index.add(1)
        with pytest.raises(ValueError):
            index.add(1)

    def test_discard(self):
        index = LiveAddressIndex()
        for address in (1, 2, 3):
            index.add(address)
        assert index.discard(2) is True
        assert index.discard(2) is False
        assert len(index) == 2
        assert [index.kth(k) for k in range(2)] == [1, 3]
        assert 2 not in index

    def test_kth_bounds(self):
        index = LiveAddressIndex()
        index.add(5)
        with pytest.raises(IndexError):
            index.kth(1)
        with pytest.raises(IndexError):
            index.kth(-1)

    def test_readd_after_discard_goes_to_end(self):
        # Matches dict semantics: del + reinsert moves a key to the end.
        index = LiveAddressIndex()
        for address in (1, 2, 3):
            index.add(address)
        index.discard(1)
        index.add(1)
        assert [index.kth(k) for k in range(3)] == [2, 3, 1]


class TestDictEquivalence:
    """Randomized model check against the list-rebuild spelling."""

    def test_matches_dict_key_order_under_churn(self):
        rng = random.Random(1234)
        index = LiveAddressIndex()
        model: dict = {}
        next_address = 0
        for _ in range(5000):
            action = rng.random()
            if action < 0.55 or not model:
                next_address += 1
                model[next_address] = True
                index.add(next_address)
            else:
                victim = list(model.keys())[rng.randrange(len(model))]
                del model[victim]
                assert index.discard(victim)
            assert len(index) == len(model)
            if model:
                keys = list(model.keys())
                k = rng.randrange(len(keys))
                assert index.kth(k) == keys[k]
        assert list(index.live_addresses()) == list(model.keys())

    def test_compaction_bounds_slots_and_preserves_order(self):
        index = LiveAddressIndex()
        for address in range(1000):
            index.add(address)
        # Kill the front 900; tombstones must trigger compaction.
        for address in range(900):
            index.discard(address)
        assert len(index) == 100
        assert index.slots < 2 * len(index) + 1
        assert [index.kth(k) for k in range(100)] == list(range(900, 1000))
