"""Tests for latency-model wiring into the full simulation."""

from __future__ import annotations

import pytest

from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.network.latency import pairwise_latency, uniform_latency


def run_with_latency(latency, seed=8):
    sim = GuessSimulation(
        SystemParams(network_size=60, query_rate=0.05),
        ProtocolParams(cache_size=15),
        seed=seed,
        latency=latency,
    )
    sim.run(400.0)
    return sim.report()


class TestLatencyIntegration:
    def test_response_time_scales_with_rtt(self):
        fast = run_with_latency(uniform_latency(0.001, 0.002, seed=1))
        slow = run_with_latency(uniform_latency(0.15, 0.19, seed=1))
        assert slow.mean_response_time > fast.mean_response_time

    def test_probe_counts_unaffected_by_latency(self):
        a = run_with_latency(uniform_latency(0.001, 0.002, seed=1))
        b = run_with_latency(uniform_latency(0.15, 0.19, seed=1))
        # Latency prices the round trip; it must not change what gets
        # probed (same seed, same decisions).
        assert a.total_probes == b.total_probes
        assert a.queries == b.queries
        assert a.satisfied_queries == b.satisfied_queries

    def test_pairwise_model_works_in_simulation(self):
        report = run_with_latency(pairwise_latency(0.01, 0.1, seed=2))
        assert report.queries > 0
        assert report.mean_response_time is None or report.mean_response_time > 0
