"""Tests for response-time analysis."""

from __future__ import annotations

import pytest

from repro.analysis.response_time import (
    ResponseTimeStats,
    parallel_response_estimate,
)
from repro.core.search import QueryResult
from repro.errors import ConfigError


def make_result(response_time, satisfied=True):
    return QueryResult(
        satisfied=satisfied,
        results=1 if satisfied else 0,
        probes=5,
        good_probes=5,
        dead_probes=0,
        refused_probes=0,
        duration=1.0,
        response_time=response_time if satisfied else None,
        pool_exhausted=not satisfied,
    )


class TestResponseTimeStats:
    def test_summary_values(self):
        results = [make_result(t) for t in (1.0, 2.0, 3.0, 4.0)]
        stats = ResponseTimeStats.from_results(results)
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.p50 == pytest.approx(2.5)
        assert stats.worst == 4.0

    def test_unsatisfied_skipped(self):
        results = [make_result(1.0), make_result(None, satisfied=False)]
        stats = ResponseTimeStats.from_results(results)
        assert stats.count == 1

    def test_empty(self):
        stats = ResponseTimeStats.from_results([])
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.worst == 0.0


class TestParallelEstimate:
    def test_paper_example(self):
        """§6.2: 17 probes, k=5 -> at most 21 probes, < 1 second."""
        response, probes = parallel_response_estimate(17, 5)
        assert probes == 21.0
        assert response < 1.0

    def test_serial_identity(self):
        response, probes = parallel_response_estimate(10, 1, spacing=0.2)
        assert response == pytest.approx(2.0)
        assert probes == 10.0

    def test_paper_worst_case(self):
        """§6.2: 1000 serial probes at 0.2s spacing = 200 seconds."""
        response, _ = parallel_response_estimate(1000, 1)
        assert response == pytest.approx(200.0)

    def test_k_divides_response(self):
        serial, _ = parallel_response_estimate(100, 1)
        parallel, _ = parallel_response_estimate(100, 10)
        assert parallel == pytest.approx(serial / 10)

    def test_validation(self):
        with pytest.raises(ConfigError):
            parallel_response_estimate(0, 1)
        with pytest.raises(ConfigError):
            parallel_response_estimate(10, 0)
        with pytest.raises(ConfigError):
            parallel_response_estimate(10, 1, spacing=0.0)
