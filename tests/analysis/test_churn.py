"""Tests for churn analysis."""

from __future__ import annotations

import random

import pytest

from repro.analysis.churn import ChurnStats
from repro.errors import WorkloadError
from repro.workload.lifetimes import LifetimeModel


@pytest.fixture
def rng():
    return random.Random(12)


class TestEstimate:
    def test_fixed_lifetimes(self, rng):
        model = LifetimeModel(sample=[100.0] * 10)
        stats = ChurnStats.estimate(
            model, network_size=50, interval=30.0, rng=rng, samples=100
        )
        assert stats.median_lifetime == pytest.approx(100.0)
        assert stats.mean_lifetime == pytest.approx(100.0)
        assert stats.turnover_per_hour == pytest.approx(50 / 100 * 3600)
        assert stats.death_within_interval_p == 0.0

    def test_interval_death_probability(self, rng):
        # A dense bimodal sample: half the mass at 10s, half at 1000s,
        # so interpolation between order statistics barely blurs the
        # boundary.
        model = LifetimeModel(sample=[10.0] * 50 + [1000.0] * 50)
        stats = ChurnStats.estimate(
            model, network_size=10, interval=50.0, rng=rng, samples=4000
        )
        assert stats.death_within_interval_p == pytest.approx(0.5, abs=0.05)

    def test_multiplier_shifts_turnover(self, rng):
        fast = ChurnStats.estimate(
            LifetimeModel(multiplier=0.2), 100, 30.0, rng, samples=2000
        )
        slow = ChurnStats.estimate(
            LifetimeModel(multiplier=1.0), 100, 30.0, random.Random(12),
            samples=2000,
        )
        assert fast.turnover_per_hour > 3 * slow.turnover_per_hour

    def test_validation(self, rng):
        model = LifetimeModel(sample=[10.0])
        with pytest.raises(WorkloadError):
            ChurnStats.estimate(model, 0, 30.0, rng)
        with pytest.raises(WorkloadError):
            ChurnStats.estimate(model, 10, 0.0, rng)
        with pytest.raises(WorkloadError):
            ChurnStats.estimate(model, 10, 30.0, rng, samples=5)


class TestSuggestedInterval:
    def test_scales_inversely_with_cache_size(self, rng):
        stats = ChurnStats.estimate(
            LifetimeModel(sample=[3600.0] * 4), 100, 30.0, rng, samples=100
        )
        small = stats.suggested_ping_interval(cache_size=10)
        large = stats.suggested_ping_interval(cache_size=100)
        assert small > large  # small caches may ping each entry more often

    def test_floor_of_one_second(self, rng):
        stats = ChurnStats.estimate(
            LifetimeModel(sample=[10.0] * 4), 100, 30.0, rng, samples=100
        )
        assert stats.suggested_ping_interval(cache_size=1000) >= 1.0

    def test_validation(self, rng):
        stats = ChurnStats.estimate(
            LifetimeModel(sample=[100.0] * 4), 100, 30.0, rng, samples=100
        )
        with pytest.raises(WorkloadError):
            stats.suggested_ping_interval(0)
        with pytest.raises(WorkloadError):
            stats.suggested_ping_interval(10, target_dead_per_cycle=0.0)
