"""Tests for overlay structural analysis."""

from __future__ import annotations

import random

import pytest

from repro.analysis.overlay_stats import OverlayStats
from repro.errors import TopologyError
from repro.network.overlay import OverlaySnapshot


def star_snapshot(n=10):
    """Peer 0 is in everyone's cache (a hub); spokes point only at 0."""
    return OverlaySnapshot.from_caches(
        live=range(n),
        cache_contents={i: [0] for i in range(1, n)},
    )


def chain_snapshot(n=6):
    return OverlaySnapshot.from_caches(
        live=range(n),
        cache_contents={i: [i + 1] for i in range(n - 1)},
    )


class TestDegrees:
    def test_in_degrees_identify_hub(self):
        stats = OverlayStats(star_snapshot(10))
        top = stats.most_referenced(1)
        assert top == [(0, 9)]

    def test_most_referenced_order_and_tiebreak(self):
        snap = OverlaySnapshot.from_caches(
            live=[1, 2, 3, 4],
            cache_contents={1: [3, 4], 2: [3, 4]},
        )
        stats = OverlayStats(snap)
        assert stats.most_referenced(2) == [(3, 2), (4, 2)]

    def test_out_degree_quantiles(self):
        stats = OverlayStats(star_snapshot(11))
        qs = stats.out_degree_quantiles((0.5,))
        assert qs[0.5] == pytest.approx(1.0)  # spokes have out-degree 1

    def test_empty_snapshot_quantiles(self):
        snap = OverlaySnapshot.from_caches(live=[], cache_contents={})
        stats = OverlayStats(snap)
        assert stats.out_degree_quantiles((0.5,)) == {0.5: 0.0}
        assert stats.in_degree_quantiles((0.5,)) == {0.5: 0.0}


class TestPathLengths:
    def test_chain_distances(self):
        stats = OverlayStats(chain_snapshot(4))  # 0->1->2->3
        # From 0: distances 1, 2, 3 -> mean 2.
        assert stats.mean_reach_path_length([0]) == pytest.approx(2.0)

    def test_sink_contributes_nothing(self):
        stats = OverlayStats(chain_snapshot(3))
        # From the sink nothing is reachable; mean over sources with
        # reach only.
        assert stats.mean_reach_path_length([2]) == 0.0

    def test_dead_source_rejected(self):
        stats = OverlayStats(chain_snapshot(3))
        with pytest.raises(TopologyError):
            stats.mean_reach_path_length([99])


class TestRemovalExperiments:
    def test_targeted_removal_shatters_star(self):
        stats = OverlayStats(star_snapshot(10))
        # Removing the hub (top 10%) leaves 9 isolated spokes.
        assert stats.targeted_removal_lcc(0.1) == 1

    def test_targeted_removal_zero_fraction(self):
        stats = OverlayStats(star_snapshot(10))
        assert stats.targeted_removal_lcc(0.0) == 10

    def test_targeted_beats_random_on_hub_topologies(self):
        stats = OverlayStats(star_snapshot(50))
        rng = random.Random(5)
        targeted = stats.targeted_removal_lcc(0.02)   # kills the hub
        randoms = [
            stats.random_removal_lcc(0.02, random.Random(i))
            for i in range(10)
        ]
        # Random removal usually misses the hub, so the expected
        # surviving LCC is far larger.
        assert targeted < max(randoms)

    def test_random_removal_counts(self):
        stats = OverlayStats(chain_snapshot(10))
        rng = random.Random(1)
        assert stats.random_removal_lcc(0.0, rng) == 10

    def test_invalid_fraction(self):
        stats = OverlayStats(chain_snapshot(3))
        with pytest.raises(TopologyError):
            stats.targeted_removal_lcc(1.0)
        with pytest.raises(TopologyError):
            stats.random_removal_lcc(-0.1, random.Random(0))
