"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

# Wall-clock deadlines make property tests flaky on loaded CI boxes;
# correctness, not per-example latency, is what these suites check.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.core.entry import CacheEntry
from repro.core.params import ProtocolParams, SystemParams
from repro.core.policies import PolicySet


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_system() -> SystemParams:
    """A small, fast system configuration."""
    return SystemParams(network_size=60, query_rate=0.05)


@pytest.fixture
def default_protocol() -> ProtocolParams:
    """Table 2 defaults with a small cache for fast tests."""
    return ProtocolParams(cache_size=20)


@pytest.fixture
def random_policies() -> PolicySet:
    """An all-Random policy set."""
    return PolicySet.from_protocol(ProtocolParams())


def make_entry(
    address: int, ts: float = 0.0, num_files: int = 0, num_res: int = 0
) -> CacheEntry:
    """Terse entry constructor used across cache/policy tests."""
    return CacheEntry(
        address=address, ts=ts, num_files=num_files, num_res=num_res
    )
