"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_negative_start_time_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(start_time=-1.0)

    def test_schedule_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule(5.0, lambda: None)

    def test_schedule_after_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_after(-0.1, lambda: None)

    def test_schedule_at_now_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, lambda: fired.append(True))
        sim.run_until(0.0)
        assert fired == [True]

    def test_pending_counts_scheduled_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2


class TestExecutionOrder:
    def test_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append(3))
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(2.0, lambda: order.append(2))
        sim.run_until(10.0)
        assert order == [1, 2, 3]

    def test_same_time_priority_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("q"), priority=EventPriority.QUERY)
        sim.schedule(1.0, lambda: order.append("d"), priority=EventPriority.DEATH)
        sim.schedule(1.0, lambda: order.append("b"), priority=EventPriority.BIRTH)
        sim.run_until(1.0)
        assert order == ["d", "b", "q"]

    def test_same_time_same_priority_fifo(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run_until(1.0)
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(4.5, lambda: seen.append(sim.now))
        sim.run_until(10.0)
        assert seen == [4.5]

    def test_clock_lands_on_horizon(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(7.0)
        assert sim.now == 7.0

    def test_events_scheduled_during_run_fire_in_same_run(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(2.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run_until(5.0)
        assert order == ["first", "nested"]

    def test_events_beyond_horizon_wait(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(True))
        sim.run_until(4.0)
        assert fired == []
        sim.run_until(5.0)
        assert fired == [True]


class TestRunSemantics:
    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_run_until_returns_executed_count(self):
        sim = Simulator()
        for t in (1.0, 2.0, 8.0):
            sim.schedule(t, lambda: None)
        assert sim.run_until(5.0) == 2
        assert sim.run_until(10.0) == 1

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run_until(10.0)
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run_until(2.0)
        assert len(errors) == 1

    def test_step_fires_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_step_on_empty_heap(self):
        assert Simulator().step() is False

    def test_run_all_drains_heap(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        assert sim.run_all() == 3
        assert sim.pending == 0

    def test_run_all_max_events(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        assert sim.run_all(max_events=2) == 2

    def test_events_executed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        assert sim.events_executed == 1


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(True))
        assert handle.cancel() is True
        sim.run_until(2.0)
        assert fired == []

    def test_cancel_twice_returns_false(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False

    def test_cancel_after_fire_returns_false(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        assert handle.cancel() is False

    def test_handle_active_lifecycle(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.active
        sim.run_until(2.0)
        assert not handle.active

    def test_handle_metadata(self):
        sim = Simulator()
        handle = sim.schedule(3.0, lambda: None, label="ping")
        assert handle.time == 3.0
        assert handle.label == "ping"
