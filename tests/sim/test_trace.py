"""Tests for the trace log."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.sim.trace import TraceLog


class TestEmit:
    def test_records_in_order(self):
        trace = TraceLog()
        trace.emit(1.0, "probe", dst=5)
        trace.emit(2.0, "death", peer=5)
        kinds = [r.kind for r in trace]
        assert kinds == ["probe", "death"]

    def test_detail_payload(self):
        trace = TraceLog()
        trace.emit(1.0, "probe", dst=5, status="timeout")
        record = trace.last()
        assert record.time == 1.0
        assert record.detail == {"dst": 5, "status": "timeout"}

    def test_ring_eviction(self):
        trace = TraceLog(capacity=3)
        for i in range(10):
            trace.emit(float(i), "tick", i=i)
        assert len(trace) == 3
        assert [r.detail["i"] for r in trace] == [7, 8, 9]
        assert trace.emitted == 10

    def test_kind_filter(self):
        trace = TraceLog(kinds={"probe"})
        trace.emit(1.0, "probe")
        trace.emit(2.0, "death")
        assert len(trace) == 1
        assert trace.dropped_by_filter == 1

    def test_of_kind(self):
        trace = TraceLog()
        trace.emit(1.0, "a")
        trace.emit(2.0, "b")
        trace.emit(3.0, "a")
        assert [r.time for r in trace.of_kind("a")] == [1.0, 3.0]

    def test_hook(self):
        trace = TraceLog()
        on_probe = trace.hook("probe")
        on_probe(4.0, dst=7)
        assert trace.last().kind == "probe"
        assert trace.last().detail == {"dst": 7}

    def test_clear_keeps_counters(self):
        trace = TraceLog()
        trace.emit(1.0, "x")
        trace.clear()
        assert len(trace) == 0
        assert trace.last() is None
        assert trace.emitted == 1

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            TraceLog(capacity=0)

    def test_empty_log(self):
        trace = TraceLog()
        assert len(trace) == 0
        assert list(trace.of_kind("x")) == []
