"""Tests for named RNG streams."""

from __future__ import annotations

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_varies_with_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_varies_with_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_adjacent_masters_not_adjacent_seeds(self):
        # The hash construction should decorrelate neighbouring seeds.
        assert abs(derive_seed(1, "a") - derive_seed(2, "a")) > 1000

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(2**62, "x" * 100) < 2**64


class TestRngRegistry:
    def test_same_stream_same_sequence(self):
        a = RngRegistry(7).stream("lifetimes")
        b = RngRegistry(7).stream("lifetimes")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_streams_differ(self):
        reg = RngRegistry(7)
        a = [reg.stream("a").random() for _ in range(5)]
        b = [reg.stream("b").random() for _ in range(5)]
        assert a != b

    def test_stream_instance_cached(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_stream_isolation_from_creation_order(self):
        # Drawing from stream "a" must not perturb stream "b".
        reg1 = RngRegistry(7)
        reg1.stream("a").random()
        b1 = reg1.stream("b").random()

        reg2 = RngRegistry(7)
        b2 = reg2.stream("b").random()
        assert b1 == b2

    def test_spawn_changes_seed_space(self):
        parent = RngRegistry(7)
        child = parent.spawn("trial-1")
        assert child.master_seed != parent.master_seed
        assert (
            child.stream("a").random() != parent.stream("a").random()
        )

    def test_spawn_deterministic(self):
        a = RngRegistry(7).spawn("t").stream("s").random()
        b = RngRegistry(7).spawn("t").stream("s").random()
        assert a == b

    def test_names_lists_instantiated_streams(self):
        reg = RngRegistry(0)
        reg.stream("b")
        reg.stream("a")
        assert list(reg.names()) == ["a", "b"]
