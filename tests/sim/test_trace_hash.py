"""The engine's trace-hash determinism sanitizer."""

from __future__ import annotations

from repro.sim.engine import Engine, Simulator, TraceHasher
from repro.sim.events import EventPriority


def build_run(trace_hash: bool = True) -> Simulator:
    """A small fixed schedule touching several priorities and labels."""
    sim = Simulator(trace_hash=trace_hash)
    sim.schedule(1.0, lambda: None, priority=EventPriority.DEATH, label="death")
    sim.schedule(1.0, lambda: None, priority=EventPriority.BIRTH, label="birth")
    sim.schedule(2.5, lambda: None, label="ping")
    sim.schedule(4.0, lambda: None, priority=EventPriority.QUERY, label="burst")
    return sim


class TestTraceHasher:
    def test_digest_is_a_stable_snapshot(self):
        hasher = TraceHasher()
        hasher.fold(1.0, 0, 0, "a")
        first = hasher.digest()
        assert hasher.digest() == first  # non-destructive
        hasher.fold(2.0, 1, 1, "b")
        assert hasher.digest() != first
        assert hasher.events_folded == 2

    def test_one_ulp_time_difference_changes_digest(self):
        base, nudged = TraceHasher(), TraceHasher()
        t = 1.0
        base.fold(t, 0, 0, "x")
        import math

        nudged.fold(math.nextafter(t, 2.0), 0, 0, "x")
        assert base.digest() != nudged.digest()


class TestEngineTraceHash:
    def test_engine_is_the_simulator(self):
        assert Engine is Simulator

    def test_disabled_by_default(self):
        sim = build_run(trace_hash=False)
        sim.run_until(10.0)
        assert sim.trace_digest is None

    def test_same_schedule_same_digest(self):
        a, b = build_run(), build_run()
        a.run_until(10.0)
        b.run_until(10.0)
        assert a.trace_digest == b.trace_digest

    def test_digest_independent_of_driving_style(self):
        """step()-driving and run_until()-driving fold the same stream."""
        stepped, batched = build_run(), build_run()
        while stepped.step():
            pass
        batched.run_until(10.0)
        assert stepped.trace_digest == batched.trace_digest

    def test_label_divergence_changes_digest(self):
        a, b = Simulator(trace_hash=True), Simulator(trace_hash=True)
        a.schedule(1.0, lambda: None, label="ping")
        b.schedule(1.0, lambda: None, label="pong")
        a.run_until(2.0)
        b.run_until(2.0)
        assert a.trace_digest != b.trace_digest

    def test_cancelled_events_do_not_reach_the_digest(self):
        with_cancel = Simulator(trace_hash=True)
        with_cancel.schedule(1.0, lambda: None, label="keep")
        with_cancel.schedule(2.0, lambda: None, label="drop").cancel()
        plain = Simulator(trace_hash=True)
        plain.schedule(1.0, lambda: None, label="keep")
        with_cancel.run_until(5.0)
        plain.run_until(5.0)
        assert with_cancel.trace_digest == plain.trace_digest

    def test_scheduling_order_is_part_of_the_trace(self):
        """Same-(time, priority) events are sequenced by scheduling order."""
        a, b = Simulator(trace_hash=True), Simulator(trace_hash=True)
        a.schedule(1.0, lambda: None, label="first")
        a.schedule(1.0, lambda: None, label="second")
        b.schedule(1.0, lambda: None, label="second")
        b.schedule(1.0, lambda: None, label="first")
        a.run_until(2.0)
        b.run_until(2.0)
        assert a.trace_digest != b.trace_digest
