"""Unit tests for the pluggable schedulers (heap and timing wheel)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.sim.engine import EventHandle, Simulator
from repro.sim.events import EventPriority
from repro.sim.wheel import (
    DEFAULT_SLOTS,
    DEFAULT_TICK,
    HeapScheduler,
    TimingWheel,
    make_scheduler,
)


def make_item(time, priority=0, seq=None, queue=None):
    """A queue item with a real EventHandle (seq auto-unique)."""
    if seq is None:
        make_item.counter += 1
        seq = make_item.counter
    handle = EventHandle(time, priority, seq, lambda: None, "", (), queue)
    return (time, priority, seq, handle)


make_item.counter = 0


def drain(sched):
    """Pop everything (no horizon) and return the handles in order."""
    out = []
    while True:
        handle = sched.pop_next(math.inf)
        if handle is None:
            return out
        out.append(handle)


class TestMakeScheduler:
    def test_heap_by_name(self):
        assert make_scheduler("heap").name == "heap"

    def test_wheel_by_name(self):
        assert make_scheduler("wheel").name == "wheel"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            make_scheduler("calendar")

    def test_bad_wheel_geometry_rejected(self):
        with pytest.raises(ConfigError):
            TimingWheel(tick=0.0)
        with pytest.raises(ConfigError):
            TimingWheel(tick=math.inf)
        with pytest.raises(ConfigError):
            TimingWheel(slots=0)

    def test_default_geometry(self):
        wheel = TimingWheel()
        assert wheel._tick == DEFAULT_TICK
        assert wheel._slots == DEFAULT_SLOTS


@pytest.mark.parametrize("factory", [HeapScheduler, TimingWheel])
class TestOrderingContract:
    def test_time_order(self, factory):
        sched = factory()
        items = [make_item(t) for t in (5.0, 1.0, 3.0, 2.0, 4.0)]
        for item in items:
            sched.push(item)
        assert [h.time for h in drain(sched)] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_same_time_priority_then_seq(self, factory):
        sched = factory()
        sched.push(make_item(1.0, priority=2, seq=0))
        sched.push(make_item(1.0, priority=0, seq=1))
        sched.push(make_item(1.0, priority=0, seq=2))
        sched.push(make_item(1.0, priority=1, seq=3))
        popped = drain(sched)
        assert [(h.priority, h.seq) for h in popped] == [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 0),
        ]

    def test_horizon_respected(self, factory):
        sched = factory()
        sched.push(make_item(1.0))
        sched.push(make_item(10.0))
        assert sched.pop_next(5.0).time == 1.0
        assert sched.pop_next(5.0) is None
        assert len(sched) == 1
        assert sched.pop_next(10.0).time == 10.0

    def test_empty_pop_returns_none(self, factory):
        assert factory().pop_next(math.inf) is None

    def test_len_tracks_pushes_and_pops(self, factory):
        sched = factory()
        for t in (1.0, 2.0, 3.0):
            sched.push(make_item(t))
        assert len(sched) == 3
        sched.pop_next(math.inf)
        assert len(sched) == 2


class TestWheelGeometryPaths:
    def test_far_future_goes_to_overflow_and_comes_back(self):
        wheel = TimingWheel(tick=1.0, slots=4)  # ring spans 4 seconds
        near = make_item(0.5)
        ring = make_item(2.5)
        far = make_item(1000.25)
        farther = make_item(5000.75)
        for item in (far, ring, farther, near):
            wheel.push(item)
        assert [h.time for h in drain(wheel)] == [0.5, 2.5, 1000.25, 5000.75]

    def test_cursor_jump_over_empty_stretch(self):
        wheel = TimingWheel(tick=1.0, slots=8)
        wheel.push(make_item(100000.5))
        assert wheel.pop_next(math.inf).time == 100000.5

    def test_interleaved_push_pop_preserves_order(self):
        wheel = TimingWheel(tick=1.0, slots=4)
        wheel.push(make_item(1.5))
        assert wheel.pop_next(math.inf).time == 1.5
        # Push into the already-open near window (the incursion path).
        wheel.push(make_item(1.75))
        wheel.push(make_item(1.6))
        wheel.push(make_item(9.0))
        assert [h.time for h in drain(wheel)] == [1.6, 1.75, 9.0]

    def test_same_instant_reschedule_during_drain(self):
        # A death event scheduling a birth at the same timestamp is the
        # protocol's hot case for the incursion heap.
        sim = Simulator(scheduler="wheel")
        order = []

        def death():
            order.append("death")
            sim.schedule(
                sim.now, lambda: order.append("birth"),
                priority=EventPriority.BIRTH,
            )

        sim.schedule(3.5, death, priority=EventPriority.DEATH)
        sim.schedule(3.5, lambda: order.append("q"), priority=EventPriority.QUERY)
        sim.run_until(10.0)
        assert order == ["death", "birth", "q"]

    def test_infinite_timestamp_served_last(self):
        wheel = TimingWheel()
        wheel.push(make_item(math.inf))
        wheel.push(make_item(1.0))
        popped = drain(wheel)
        assert [h.time for h in popped] == [1.0, math.inf]

    def test_bucket_boundary_times_never_fire_late(self):
        wheel = TimingWheel(tick=0.1, slots=16)  # 0.1 is not binary-exact
        times = [i * 0.1 for i in range(200)]
        for t in sorted(times, reverse=True):
            wheel.push(make_item(t))
        assert [h.time for h in drain(wheel)] == sorted(times)


@pytest.mark.parametrize("scheduler", ["heap", "wheel"])
class TestTombstoneHygiene:
    def test_cancelled_events_are_skipped(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []
        keep = sim.schedule(1.0, lambda: fired.append("keep"))
        kill = sim.schedule(2.0, lambda: fired.append("kill"))
        assert kill.cancel()
        sim.run_until(5.0)
        assert fired == ["keep"]
        assert keep.active is False

    def test_mass_cancellation_does_not_grow_queue_unboundedly(self, scheduler):
        """The satellite-3 guarantee: tombstones trigger compaction.

        Schedule/cancel in waves while keeping a bounded live set; the
        queue (live + tombstones) must stay O(live), not O(total ever
        scheduled).
        """
        sim = Simulator(scheduler=scheduler)
        total_scheduled = 0
        for wave in range(200):
            handles = [
                sim.schedule(10.0 + wave + i * 0.001, lambda: None)
                for i in range(100)
            ]
            total_scheduled += len(handles)
            for handle in handles:
                handle.cancel()
            # Queue never holds more than ~2x the biggest live wave.
            assert sim.pending <= 250, (wave, sim.pending)
        assert total_scheduled == 20_000
        assert sim.compactions > 0
        assert sim.tombstones <= sim.pending
        assert 0.0 <= sim.cancelled_ratio <= 1.0

    def test_cancelled_ratio_reports_fraction(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        keep = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        victim = sim.schedule(99.0, lambda: None)
        victim.cancel()
        assert sim.pending == 11
        assert sim.tombstones == 1
        assert sim.cancelled_ratio == pytest.approx(1 / 11)
        del keep

    def test_compaction_preserves_survivors(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []
        for i in range(300):
            handle = sim.schedule(
                1.0 + i * 0.01, lambda i=i: fired.append(i)
            )
            if i % 3 != 0:
                handle.cancel()  # cancel 2/3 -> forces compaction passes
        assert sim.compactions > 0
        sim.run_until(10.0)
        assert fired == [i for i in range(300) if i % 3 == 0]


class TestEngineSchedulerSelection:
    def test_default_is_heap(self):
        assert Simulator().scheduler == "heap"

    def test_wheel_selectable(self):
        assert Simulator(scheduler="wheel").scheduler == "wheel"

    def test_instance_accepted(self):
        wheel = TimingWheel(tick=0.5, slots=64)
        sim = Simulator(scheduler=wheel)
        assert sim.scheduler == "wheel"
        sim.schedule(1.0, lambda: None)
        assert len(wheel) == 1

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigError):
            Simulator(scheduler="splay")
