"""Tests for sliding-window and bucketed rate limiting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.sim.windows import BucketedRateLimiter, SlidingWindowCounter


class TestSlidingWindowCounter:
    def test_counts_within_window(self):
        counter = SlidingWindowCounter(window=1.0)
        counter.record(0.1)
        counter.record(0.5)
        assert counter.count(0.9) == 2

    def test_expires_old_events(self):
        counter = SlidingWindowCounter(window=1.0)
        counter.record(0.0)
        counter.record(0.5)
        assert counter.count(1.2) == 1
        assert counter.count(1.6) == 0

    def test_boundary_is_exclusive(self):
        counter = SlidingWindowCounter(window=1.0)
        counter.record(0.0)
        # The event at t=0 falls outside the window (now - window, now]
        # exactly at now=1.0.
        assert counter.count(1.0) == 0

    def test_limit_enforced(self):
        counter = SlidingWindowCounter(window=1.0, limit=2)
        assert counter.try_record(0.1)
        assert counter.try_record(0.2)
        assert not counter.try_record(0.3)
        assert counter.total == 2

    def test_limit_frees_as_window_moves(self):
        counter = SlidingWindowCounter(window=1.0, limit=1)
        assert counter.try_record(0.0)
        assert not counter.try_record(0.5)
        assert counter.try_record(1.5)

    def test_unlimited_never_refuses(self):
        counter = SlidingWindowCounter(window=1.0, limit=None)
        for i in range(100):
            assert counter.try_record(i * 0.001)

    def test_zero_limit_refuses_everything(self):
        counter = SlidingWindowCounter(window=1.0, limit=0)
        assert not counter.try_record(0.0)

    def test_decreasing_timestamps_rejected(self):
        counter = SlidingWindowCounter(window=1.0)
        counter.record(1.0)
        with pytest.raises(ConfigError):
            counter.record(0.5)

    def test_reset(self):
        counter = SlidingWindowCounter(window=1.0, limit=1)
        counter.record(0.0)
        counter.reset()
        assert counter.total == 0
        assert counter.try_record(0.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            SlidingWindowCounter(window=0.0)
        with pytest.raises(ConfigError):
            SlidingWindowCounter(window=1.0, limit=-1)


class TestBucketedRateLimiter:
    def test_counts_per_bucket(self):
        limiter = BucketedRateLimiter(window=1.0)
        limiter.record(0.2)
        limiter.record(0.7)
        limiter.record(1.1)
        assert limiter.count(0.5) == 2
        assert limiter.count(1.9) == 1

    def test_limit_per_bucket(self):
        limiter = BucketedRateLimiter(window=1.0, limit=2)
        assert limiter.try_record(5.1)
        assert limiter.try_record(5.9)
        assert not limiter.try_record(5.5)
        assert limiter.try_record(6.0)  # next bucket

    def test_out_of_order_timestamps_tolerated(self):
        # The whole point of the bucketed variant: interleaved virtual
        # probe timestamps from different queries.
        limiter = BucketedRateLimiter(window=1.0, limit=2)
        assert limiter.try_record(10.4)
        assert limiter.try_record(9.7)   # older bucket, fine
        assert limiter.try_record(10.6)
        assert not limiter.try_record(10.2)  # bucket 10 full

    def test_unlimited(self):
        limiter = BucketedRateLimiter(window=1.0, limit=None)
        for i in range(50):
            assert limiter.try_record(3.0)
        assert limiter.total == 50

    def test_prune_keeps_recent_buckets_correct(self):
        limiter = BucketedRateLimiter(window=1.0, limit=5)
        # Push far more buckets than the prune threshold.
        for second in range(1000):
            limiter.record(float(second))
        assert limiter.count(999.5) == 1
        assert limiter.total == 1000

    def test_reset(self):
        limiter = BucketedRateLimiter(window=1.0, limit=1)
        limiter.record(0.0)
        limiter.reset()
        assert limiter.total == 0
        assert limiter.try_record(0.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            BucketedRateLimiter(window=-1.0)
        with pytest.raises(ConfigError):
            BucketedRateLimiter(limit=-2)

    def test_window_scales_buckets(self):
        limiter = BucketedRateLimiter(window=10.0, limit=1)
        assert limiter.try_record(1.0)
        assert not limiter.try_record(9.0)   # same 10s bucket
        assert limiter.try_record(11.0)
