"""Tests for event records and their ordering."""

from __future__ import annotations

from repro.sim.events import Event, EventPriority


def make_event(time=0.0, priority=EventPriority.PROTOCOL, seq=0):
    return Event(
        time=time, priority=priority, seq=seq, action=lambda: None,
        label="test",
    )


class TestEventPriority:
    def test_death_runs_before_everything(self):
        assert EventPriority.DEATH < EventPriority.BIRTH
        assert EventPriority.BIRTH < EventPriority.PROTOCOL
        assert EventPriority.PROTOCOL < EventPriority.QUERY
        assert EventPriority.QUERY < EventPriority.METRICS

    def test_default(self):
        assert EventPriority.default() is EventPriority.PROTOCOL


class TestEventOrdering:
    def test_time_dominates(self):
        early = make_event(time=1.0, priority=EventPriority.METRICS, seq=9)
        late = make_event(time=2.0, priority=EventPriority.DEATH, seq=0)
        assert early < late

    def test_priority_breaks_time_ties(self):
        death = make_event(time=1.0, priority=EventPriority.DEATH, seq=9)
        query = make_event(time=1.0, priority=EventPriority.QUERY, seq=0)
        assert death < query

    def test_seq_breaks_full_ties(self):
        first = make_event(seq=1)
        second = make_event(seq=2)
        assert first < second

    def test_sort_key_structure(self):
        event = make_event(time=3.5, priority=EventPriority.BIRTH, seq=7)
        assert event.sort_key() == (3.5, int(EventPriority.BIRTH), 7)

    def test_sorting_a_mixed_list(self):
        events = [
            make_event(time=2.0, priority=EventPriority.DEATH, seq=3),
            make_event(time=1.0, priority=EventPriority.QUERY, seq=2),
            make_event(time=1.0, priority=EventPriority.DEATH, seq=1),
            make_event(time=1.0, priority=EventPriority.DEATH, seq=0),
        ]
        ordered = sorted(events)
        assert [e.seq for e in ordered] == [0, 1, 2, 3]
