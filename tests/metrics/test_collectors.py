"""Tests for the metrics collector and simulation report."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.search import QueryResult
from repro.metrics.collectors import CacheHealthSample, MetricsCollector


def query_result(
    satisfied=True, probes=5, good=4, dead=1, refused=0, response_time=0.4
):
    return QueryResult(
        satisfied=satisfied,
        results=1 if satisfied else 0,
        probes=probes,
        good_probes=good,
        dead_probes=dead,
        refused_probes=refused,
        duration=probes * 0.2,
        response_time=response_time if satisfied else None,
        pool_exhausted=not satisfied,
    )


class TestQueryAggregation:
    def test_counts_and_means(self):
        collector = MetricsCollector()
        collector.record_query(query_result(probes=10, good=8, dead=2), 1.0)
        collector.record_query(
            query_result(satisfied=False, probes=20, good=15, dead=5), 2.0
        )
        report = collector.build_report()
        assert report.queries == 2
        assert report.satisfied_queries == 1
        assert report.probes_per_query == pytest.approx(15.0)
        assert report.good_probes_per_query == pytest.approx(11.5)
        assert report.dead_probes_per_query == pytest.approx(3.5)
        assert report.unsatisfied_rate == pytest.approx(0.5)
        assert report.satisfaction_rate == pytest.approx(0.5)

    def test_warmup_filters(self):
        collector = MetricsCollector(warmup=10.0)
        collector.record_query(query_result(), 5.0)
        collector.record_query(query_result(), 15.0)
        assert collector.build_report().queries == 1

    def test_mean_response_time_over_satisfied_only(self):
        collector = MetricsCollector()
        collector.record_query(query_result(response_time=1.0), 1.0)
        collector.record_query(query_result(satisfied=False), 1.0)
        collector.record_query(query_result(response_time=3.0), 1.0)
        assert collector.build_report().mean_response_time == pytest.approx(2.0)

    def test_no_queries_report(self):
        report = MetricsCollector().build_report()
        assert report.probes_per_query == 0.0
        assert report.unsatisfied_rate == 0.0
        assert report.mean_response_time is None

    def test_keep_queries_retains_records(self):
        collector = MetricsCollector(keep_queries=True)
        collector.record_query(query_result(), 1.0)
        report = collector.build_report()
        assert len(report.query_results) == 1

    def test_default_drops_records(self):
        collector = MetricsCollector()
        collector.record_query(query_result(), 1.0)
        assert collector.build_report().query_results == ()

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector(warmup=-1.0)


class TestPingAccounting:
    def test_ping_fractions(self):
        collector = MetricsCollector()
        collector.record_ping(dead=True, time=1.0)
        collector.record_ping(dead=False, time=1.0)
        collector.record_ping(dead=False, time=1.0)
        report = collector.build_report()
        assert report.pings_sent == 3
        assert report.dead_pings == 1
        assert report.dead_ping_fraction == pytest.approx(1 / 3)

    def test_ping_warmup(self):
        collector = MetricsCollector(warmup=10.0)
        collector.record_ping(dead=True, time=5.0)
        assert collector.build_report().pings_sent == 0


class TestFaultAndRetryAccounting:
    def lossy_query(self, spurious=2, retries=3, recoveries=1, wrongful=1):
        return replace(
            query_result(probes=10, good=6, dead=4),
            spurious_timeouts=spurious,
            retries=retries,
            retry_recoveries=recoveries,
            wrongful_evictions=wrongful,
        )

    def test_query_fault_sums(self):
        collector = MetricsCollector()
        collector.record_query(self.lossy_query(), 1.0)
        collector.record_query(self.lossy_query(spurious=0, wrongful=0), 2.0)
        report = collector.build_report()
        assert report.spurious_timeout_probes == 2
        assert report.probe_retries == 6
        assert report.retry_recovered_probes == 2
        assert report.wrongful_query_evictions == 1
        assert report.spurious_timeouts_per_query == pytest.approx(1.0)
        assert report.spurious_timeout_fraction == pytest.approx(2 / 8)

    def test_recovery_rate_counts_first_attempt_timeouts(self):
        collector = MetricsCollector()
        collector.record_query(self.lossy_query(recoveries=2), 1.0)
        report = collector.build_report()
        # 2 recovered + 4 final dead probes = 6 first-attempt timeouts.
        assert report.retry_recovery_rate == pytest.approx(2 / 6)

    def test_recovery_rate_zero_without_retries(self):
        collector = MetricsCollector()
        collector.record_query(query_result(probes=10, good=6, dead=4), 1.0)
        assert collector.build_report().retry_recovery_rate == 0.0

    def test_ping_fault_accounting(self):
        collector = MetricsCollector()
        collector.record_ping(
            dead=True, time=1.0, spurious=True, retries=2, wrongful=True
        )
        collector.record_ping(dead=True, time=1.0)
        collector.record_ping(
            dead=False, time=1.0, retries=1, recovered=True
        )
        report = collector.build_report()
        assert report.spurious_dead_pings == 1
        assert report.ping_retries == 3
        assert report.ping_retry_recoveries == 1
        assert report.wrongful_ping_evictions == 1
        assert report.spurious_dead_ping_fraction == pytest.approx(0.5)

    def test_wrongful_evictions_spans_both_paths(self):
        collector = MetricsCollector()
        collector.record_query(self.lossy_query(wrongful=2), 1.0)
        collector.record_ping(
            dead=True, time=1.0, spurious=True, wrongful=True
        )
        assert collector.build_report().wrongful_evictions == 3

    def test_transport_totals_passed_through(self):
        collector = MetricsCollector()
        collector.record_transport(
            probes_sent=100, timeouts=20, refusals=5, spurious_timeouts=8
        )
        report = collector.build_report()
        assert report.transport_probes_sent == 100
        assert report.transport_timeouts == 20
        assert report.transport_refusals == 5
        assert report.transport_spurious_timeouts == 8

    def test_results_per_query(self):
        collector = MetricsCollector()
        collector.record_query(query_result(), 1.0)
        collector.record_query(query_result(satisfied=False), 1.0)
        assert collector.build_report().results_per_query == pytest.approx(0.5)


class TestLoadsAndHealth:
    def test_harvest_accumulates(self):
        collector = MetricsCollector()
        collector.harvest_peer(1, 10, 2)
        collector.harvest_peer(2, 5, 0)
        report = collector.build_report()
        assert report.loads == {1: 10, 2: 5}
        assert report.refusals == {1: 2, 2: 0}
        assert report.load_distribution().total == 15

    def test_health_samples_respect_warmup(self):
        collector = MetricsCollector(warmup=100.0)
        early = CacheHealthSample(50.0, 0.5, 5.0, 5.0, 10.0)
        late = CacheHealthSample(150.0, 0.9, 9.0, 9.0, 10.0)
        collector.record_health_sample(early)
        collector.record_health_sample(late)
        report = collector.build_report()
        assert len(report.health_samples) == 1
        assert report.mean_fraction_live == pytest.approx(0.9)
        assert report.mean_absolute_live == pytest.approx(9.0)
        assert report.mean_good_entries == pytest.approx(9.0)
        assert report.mean_cache_fill == pytest.approx(10.0)

    def test_wasted_probe_fraction(self):
        collector = MetricsCollector()
        collector.record_query(query_result(probes=10, good=6, dead=4), 1.0)
        assert collector.build_report().wasted_probe_fraction == pytest.approx(0.4)


class TestResilienceAccounting:
    def test_ping_eviction_split_by_cause(self):
        collector = MetricsCollector()
        collector.record_ping(True, 1.0, dead_evicted=True)
        collector.record_ping(True, 2.0, dead_evicted=True)
        collector.record_ping(False, 3.0, refusal_evicted=True)
        report = collector.build_report()
        assert report.dead_ping_evictions == 2
        assert report.refusal_ping_evictions == 1
        assert report.dead_evictions == 2
        assert report.refusal_evictions == 1

    def test_query_eviction_split_flows_from_results(self):
        collector = MetricsCollector()
        result = replace(
            query_result(),
            dead_evictions=3,
            refusal_evictions=2,
            suppressed_probes=4,
            retries_denied=5,
        )
        collector.record_query(result, 1.0)
        report = collector.build_report()
        assert report.dead_query_evictions == 3
        assert report.refusal_query_evictions == 2
        assert report.suppressed_query_probes == 4
        assert report.query_retries_denied == 5

    def test_suppressed_and_denied_pings(self):
        collector = MetricsCollector()
        collector.record_suppressed_ping(1.0)
        collector.record_suppressed_ping(2.0)
        collector.record_ping(True, 3.0, denied=True)
        report = collector.build_report()
        assert report.suppressed_pings == 2
        assert report.ping_retries_denied == 1
        assert report.suppressed_probes == 2
        assert report.retries_denied == 1

    def test_shed_pings_harvested_from_peers(self):
        collector = MetricsCollector()
        collector.harvest_peer(1, 10, 2, pings_shed=4)
        collector.harvest_peer(2, 5, 0, pings_shed=1)
        assert collector.build_report().pings_shed == 5

    def test_wrongful_evictions_unchanged_by_split(self):
        # The PR-3 spurious-loss counter is orthogonal to the new
        # cause split: a wrongful eviction is also a dead eviction.
        collector = MetricsCollector()
        collector.record_ping(
            True, 1.0, spurious=True, wrongful=True, dead_evicted=True
        )
        report = collector.build_report()
        assert report.wrongful_ping_evictions == 1
        assert report.dead_ping_evictions == 1
        assert report.refusal_ping_evictions == 0


class TestSatisfactionWindows:
    def test_disabled_by_default(self):
        collector = MetricsCollector()
        collector.record_query(query_result(), 1.0)
        assert collector.build_report().satisfaction_windows == ()

    def test_windows_count_queries_and_satisfied(self):
        collector = MetricsCollector(satisfaction_window=10.0)
        collector.record_query(query_result(satisfied=True), 1.0)
        collector.record_query(query_result(satisfied=False), 2.0)
        collector.record_query(query_result(satisfied=True), 15.0)
        windows = collector.build_report().satisfaction_windows
        assert windows == ((0.0, 10.0, 2, 1), (10.0, 20.0, 1, 1))

    def test_final_partial_window_flushed(self):
        collector = MetricsCollector(satisfaction_window=10.0)
        collector.record_query(query_result(satisfied=True), 25.0)
        windows = collector.build_report().satisfaction_windows
        assert windows == ((20.0, 30.0, 1, 1),)

    def test_idle_windows_skipped(self):
        collector = MetricsCollector(satisfaction_window=10.0)
        collector.record_query(query_result(), 1.0)
        collector.record_query(query_result(), 55.0)
        windows = collector.build_report().satisfaction_windows
        assert [w[:2] for w in windows] == [(0.0, 10.0), (50.0, 60.0)]

    def test_warmup_filtered(self):
        collector = MetricsCollector(warmup=20.0, satisfaction_window=10.0)
        collector.record_query(query_result(), 5.0)
        collector.record_query(query_result(), 25.0)
        windows = collector.build_report().satisfaction_windows
        assert windows == ((20.0, 30.0, 1, 1),)
