"""Tests for the statistics helpers."""

from __future__ import annotations

import pytest

from repro.metrics.summary import mean, quantile, ratio, stderr, variance


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_single(self):
        assert mean([7.0]) == 7.0


class TestVariance:
    def test_known_value(self):
        assert variance([1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_constant_sequence(self):
        assert variance([5.0, 5.0, 5.0]) == 0.0

    def test_degenerate(self):
        assert variance([]) == 0.0
        assert variance([1.0]) == 0.0


class TestStderr:
    def test_known_value(self):
        assert stderr([1.0, 2.0, 3.0]) == pytest.approx((1.0 / 3.0) ** 0.5)

    def test_degenerate(self):
        assert stderr([]) == 0.0
        assert stderr([1.0]) == 0.0


class TestQuantile:
    def test_median(self):
        assert quantile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 9.0

    def test_interpolation(self):
        assert quantile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_single_value(self):
        assert quantile([4.0], 0.9) == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestRatio:
    def test_basic(self):
        assert ratio(6.0, 3.0) == 2.0

    def test_zero_denominator(self):
        assert ratio(5.0, 0.0) == 0.0
