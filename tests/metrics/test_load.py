"""Tests for ranked load distributions."""

from __future__ import annotations

import pytest

from repro.metrics.load import LoadDistribution, merge_loads


class TestLoadDistribution:
    def test_ranked_descending(self):
        dist = LoadDistribution({1: 5, 2: 50, 3: 10})
        assert dist.ranked() == [50, 10, 5]

    def test_total(self):
        assert LoadDistribution({1: 5, 2: 10}).total == 15

    def test_load_at_rank(self):
        dist = LoadDistribution({1: 5, 2: 50, 3: 10})
        assert dist.load_at_rank(1) == 50
        assert dist.load_at_rank(3) == 5

    def test_load_at_rank_bounds(self):
        dist = LoadDistribution({1: 5})
        with pytest.raises(IndexError):
            dist.load_at_rank(0)
        with pytest.raises(IndexError):
            dist.load_at_rank(2)

    def test_top_share_hotspot(self):
        loads = {i: 1 for i in range(100)}
        loads[0] = 901  # one peer takes 90%+
        dist = LoadDistribution(loads)
        assert dist.top_share(0.01) == pytest.approx(0.901)

    def test_top_share_uniform(self):
        dist = LoadDistribution({i: 10 for i in range(100)})
        assert dist.top_share(0.10) == pytest.approx(0.10)

    def test_top_share_validation(self):
        dist = LoadDistribution({1: 1})
        with pytest.raises(ValueError):
            dist.top_share(0.0)
        with pytest.raises(ValueError):
            dist.top_share(1.5)

    def test_gini_uniform_is_zero(self):
        dist = LoadDistribution({i: 10 for i in range(50)})
        assert dist.gini() == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_near_one(self):
        loads = {i: 0 for i in range(1, 100)}
        loads[0] = 1000
        assert LoadDistribution(loads).gini() > 0.95

    def test_gini_degenerate(self):
        assert LoadDistribution({}).gini() == 0.0
        assert LoadDistribution({1: 0}).gini() == 0.0

    def test_series_full(self):
        dist = LoadDistribution({1: 3, 2: 2, 3: 1})
        assert dist.series() == [(1, 3), (2, 2), (3, 1)]

    def test_series_thinned_monotone_ranks(self):
        dist = LoadDistribution({i: 1000 - i for i in range(1000)})
        series = dist.series(max_points=20)
        ranks = [rank for rank, _ in series]
        assert ranks == sorted(ranks)
        assert ranks[0] == 1
        assert ranks[-1] == 1000
        assert len(series) <= 21

    def test_series_empty(self):
        assert LoadDistribution({}).series() == []


class TestMergeLoads:
    def test_merge_sums_overlaps(self):
        merged = merge_loads([{1: 5, 2: 3}, {2: 4, 3: 1}])
        assert merged == {1: 5, 2: 7, 3: 1}

    def test_merge_empty(self):
        assert merge_loads([]) == {}
