"""Integration tests asserting the paper's qualitative claims.

Each test runs the full simulation at a reduced-but-sufficient scale and
checks the *shape* of a paper result (ordering, collapse, robustness) —
not absolute numbers, which depend on the measured traces the paper used.
"""

from __future__ import annotations

import pytest

from repro.core.network_sim import GuessSimulation
from repro.core.params import BadPongBehavior, ProtocolParams, SystemParams


def run(system, protocol, *, seed=11, duration=800.0, warmup=200.0, **kwargs):
    sim = GuessSimulation(system, protocol, seed=seed, warmup=warmup, **kwargs)
    sim.run(duration)
    return sim.report()


@pytest.fixture(scope="module")
def random_baseline():
    """The all-Random default configuration at N=300."""
    return run(SystemParams(network_size=300), ProtocolParams())


class TestPolicyEfficiency:
    """Paper §6.2 (Figures 10-12): policy choice moves cost dramatically."""

    def test_mfs_query_pong_cuts_cost_severalfold(self, random_baseline):
        mfs = run(
            SystemParams(network_size=300),
            ProtocolParams(query_pong="MFS"),
        )
        assert mfs.probes_per_query < random_baseline.probes_per_query / 2.0

    def test_mfs_lfs_stack_close_to_order_of_magnitude(self, random_baseline):
        stacked = run(
            SystemParams(network_size=300),
            ProtocolParams.all_same_policy("MFS"),
        )
        assert stacked.probes_per_query < random_baseline.probes_per_query / 4.0

    def test_lfs_replacement_beats_random(self, random_baseline):
        lfs = run(
            SystemParams(network_size=300),
            ProtocolParams(cache_replacement="LFS"),
        )
        assert lfs.probes_per_query < random_baseline.probes_per_query

    def test_mru_eviction_wastes_probes(self):
        """Fig 11: evicting the freshest entries floods caches with corpses."""
        system = SystemParams(network_size=300, lifespan_multiplier=0.3)
        mru = run(system, ProtocolParams(cache_replacement="MRU"))
        lru = run(system, ProtocolParams(cache_replacement="LRU"))
        assert mru.dead_probes_per_query > lru.dead_probes_per_query

    def test_unsatisfaction_floor_band(self, random_baseline):
        """§6.2: ~6% of queries are unsatisfiable; Random lands in 6-14%."""
        assert 0.03 <= random_baseline.unsatisfied_rate <= 0.20


class TestCacheSizeEffects:
    """Paper §6.1 (Table 3, Figures 3-5) under churn stress."""

    @pytest.fixture(scope="class")
    def by_cache_size(self):
        results = {}
        for cache in (5, 20, 200):
            results[cache] = run(
                SystemParams(network_size=300, lifespan_multiplier=0.2),
                ProtocolParams(cache_size=cache),
                duration=700.0,
                warmup=300.0,
            )
        return results

    def test_probes_grow_with_cache_size(self, by_cache_size):
        assert (
            by_cache_size[5].probes_per_query
            < by_cache_size[20].probes_per_query
            < by_cache_size[200].probes_per_query
        )

    def test_fraction_live_falls_with_cache_size(self, by_cache_size):
        assert (
            by_cache_size[20].mean_fraction_live
            > by_cache_size[200].mean_fraction_live
        )

    def test_dead_probes_grow_with_cache_size(self, by_cache_size):
        assert (
            by_cache_size[200].dead_probes_per_query
            > by_cache_size[20].dead_probes_per_query
        )

    def test_tiny_cache_hurts_satisfaction(self, by_cache_size):
        assert (
            by_cache_size[5].unsatisfied_rate
            > by_cache_size[20].unsatisfied_rate
        )


class TestFairnessAndCapacity:
    """Paper §6.3 (Figures 13-15)."""

    def test_mfs_concentrates_load_random_spreads_it(self):
        system = SystemParams(network_size=200)
        mfs = run(
            system,
            ProtocolParams(query_probe="MFS", query_pong="MFS",
                           cache_replacement="LFS"),
        ).load_distribution()
        random_ = run(system, ProtocolParams()).load_distribution()
        assert mfs.top_share(0.05) > 2.0 * random_.top_share(0.05)
        assert mfs.gini() > random_.gini()

    def test_random_total_probes_several_times_mfs(self):
        system = SystemParams(network_size=200)
        mfs = run(
            system,
            ProtocolParams(query_probe="MFS", query_pong="MFS",
                           cache_replacement="LFS"),
        )
        random_ = run(system, ProtocolParams())
        assert random_.total_probes > 3 * mfs.total_probes

    def test_tight_capacity_causes_refusals_but_not_unsatisfaction(self):
        """Fig 14/15: refusals appear; satisfaction barely moves."""
        protocol = ProtocolParams.all_same_policy("MR")
        roomy = run(
            SystemParams(network_size=300, max_probes_per_second=50), protocol
        )
        tight = run(
            SystemParams(network_size=300, max_probes_per_second=1), protocol
        )
        assert tight.refused_probes_per_query > roomy.refused_probes_per_query
        assert tight.refused_probes_per_query > 0.05
        # The paper reports near-zero impact at N>=500; at this reduced
        # N=300 the hit is slightly larger but must stay modest — nothing
        # like the collapse a naive congestion spiral would produce.
        assert tight.unsatisfied_rate <= roomy.unsatisfied_rate + 0.15


class TestMaliciousRobustness:
    """Paper §6.4 (Figures 16-21) at N=300 with CacheSize 30 so that 20%
    attackers (60 peers) can fully displace a cache."""

    @staticmethod
    def _attack(policy, behavior, bad):
        return run(
            SystemParams(
                network_size=300,
                percent_bad_peers=bad,
                bad_pong_behavior=behavior,
            ),
            ProtocolParams.all_same_policy(policy, cache_size=30),
        )

    def test_mfs_collapses_under_dead_poisoning(self):
        clean = self._attack("MFS", BadPongBehavior.DEAD, 0.0)
        attacked = self._attack("MFS", BadPongBehavior.DEAD, 20.0)
        assert attacked.unsatisfied_rate > clean.unsatisfied_rate + 0.35
        assert attacked.mean_good_entries < clean.mean_good_entries / 3.0

    def test_mr_robust_without_collusion(self):
        clean = self._attack("MR", BadPongBehavior.DEAD, 0.0)
        attacked = self._attack("MR", BadPongBehavior.DEAD, 20.0)
        assert attacked.unsatisfied_rate < clean.unsatisfied_rate + 0.10

    def test_random_robust_under_both_attacks(self):
        for behavior in (BadPongBehavior.DEAD, BadPongBehavior.BAD):
            clean = self._attack("Random", behavior, 0.0)
            attacked = self._attack("Random", behavior, 20.0)
            assert attacked.unsatisfied_rate < clean.unsatisfied_rate + 0.10

    def test_mr_collapses_under_collusion(self):
        clean = self._attack("MR", BadPongBehavior.BAD, 0.0)
        attacked = self._attack("MR", BadPongBehavior.BAD, 20.0)
        assert attacked.unsatisfied_rate > clean.unsatisfied_rate + 0.35
        assert attacked.mean_good_entries < clean.mean_good_entries / 3.0

    def test_mr_star_robust_under_collusion(self):
        clean = self._attack("MR*", BadPongBehavior.BAD, 0.0)
        attacked = self._attack("MR*", BadPongBehavior.BAD, 20.0)
        assert attacked.unsatisfied_rate < clean.unsatisfied_rate + 0.10

    def test_mr_star_more_efficient_than_random_under_collusion(self):
        mr_star = self._attack("MR*", BadPongBehavior.BAD, 20.0)
        random_ = self._attack("Random", BadPongBehavior.BAD, 20.0)
        assert mr_star.probes_per_query < random_.probes_per_query


class TestParallelProbing:
    """Paper §6.2 response time: k walkers cost at most ~k-1 extra probes
    while dividing response time by ~k."""

    def test_parallel_overhead_bounded(self):
        system = SystemParams(network_size=200)
        serial = run(system, ProtocolParams(parallel_probes=1), seed=3)
        k = 5
        parallel = run(system, ProtocolParams(parallel_probes=k), seed=3)
        assert (
            parallel.probes_per_query
            <= serial.probes_per_query + k
        )

    def test_parallel_response_time_improves(self):
        system = SystemParams(network_size=200)
        serial = run(system, ProtocolParams(parallel_probes=1), seed=3)
        parallel = run(system, ProtocolParams(parallel_probes=5), seed=3)
        assert parallel.mean_response_time < serial.mean_response_time / 2.0
