"""End-to-end determinism: same (seed, params) ⇒ bit-identical runs.

The dynamic oracle behind the static rules in ``repro.devtools``: a full
:class:`GuessSimulation` — churn, pings, query bursts, malicious pongs —
is run twice with ``trace_hash=True`` and the executed-event digests must
match exactly.  A single out-of-order event, stray RNG draw, or unordered
iteration anywhere in the stack changes the digest.
"""

from __future__ import annotations

import pytest

from repro.core.network_sim import GuessSimulation
from repro.core.params import BadPongBehavior, ProtocolParams, SystemParams

DURATION = 400.0


def run_once(seed: int, *, percent_bad: float = 0.0,
             behavior: BadPongBehavior = BadPongBehavior.DEAD):
    """One small, full-featured run; returns (digest, report)."""
    sim = GuessSimulation(
        SystemParams(
            network_size=100,
            percent_bad_peers=percent_bad,
            bad_pong_behavior=behavior,
        ),
        ProtocolParams(cache_size=30),
        seed=seed,
        trace_hash=True,
    )
    sim.run(DURATION)
    report = sim.report()
    return sim.trace_digest, report


class TestSameSeedBitForBit:
    def test_trace_digests_identical(self):
        digest_a, report_a = run_once(7)
        digest_b, report_b = run_once(7)
        assert digest_a is not None
        assert digest_a == digest_b
        assert report_a.probes_per_query == report_b.probes_per_query
        assert report_a.unsatisfied_rate == report_b.unsatisfied_rate
        assert report_a.queries == report_b.queries

    def test_different_seeds_diverge(self):
        digest_a, _ = run_once(7)
        digest_b, _ = run_once(8)
        assert digest_a != digest_b

    @pytest.mark.parametrize(
        "behavior", [BadPongBehavior.DEAD, BadPongBehavior.BAD, BadPongBehavior.GOOD]
    )
    def test_malicious_rosters_are_deterministic(self, behavior):
        """Regression for the set-ordered attack rosters (RD003 fixes).

        ``AttackDirectory.sample_malicious`` / ``sample_good`` draw from
        sets of live peers; before they sorted their pools, the pong
        contents depended on set iteration order.  Colluding ``BAD`` pongs
        exercise ``sample_malicious`` on every probe of a malicious peer.
        """
        digest_a, report_a = run_once(11, percent_bad=10.0, behavior=behavior)
        digest_b, report_b = run_once(11, percent_bad=10.0, behavior=behavior)
        assert digest_a == digest_b
        assert report_a.probes_per_query == report_b.probes_per_query

    def test_trace_digest_none_without_sanitizer(self):
        sim = GuessSimulation(
            SystemParams(network_size=50), ProtocolParams(), seed=3
        )
        sim.run(50.0)
        assert sim.trace_digest is None


class TestGoldenDigests:
    """Cross-version pins for the exact event stream.

    The in-process comparisons above catch *nondeterminism*; these catch
    *drift*: an optimization that is deterministic but subtly reorders
    events, perturbs an RNG draw, or changes a float would pass every
    same-seed test while silently changing every result in the repo.

    The digests were recorded before the PR-2 kernel optimizations
    (Fenwick-backed friend sampling, running-sum health snapshots,
    no-copy eviction contests, args-based event dispatch) and those
    optimizations were required to reproduce them bit-for-bit.  They
    must never drift; a legitimate semantic change to the simulation
    must say so loudly by re-recording them in the same commit.
    """

    def test_clean_network_digest_pinned(self):
        digest, report = run_once(7)
        assert digest == "6433f3abe18fda0f316241089d67313b"
        assert report.queries > 0

    def test_colluding_attack_digest_pinned(self):
        digest, _ = run_once(
            11, percent_bad=10.0, behavior=BadPongBehavior.BAD
        )
        assert digest == "23d74325e25c2c9e44279d38a317edbe"
