"""End-to-end determinism: same (seed, params) ⇒ bit-identical runs.

The dynamic oracle behind the static rules in ``repro.devtools``: a full
:class:`GuessSimulation` — churn, pings, query bursts, malicious pongs —
is run twice with ``trace_hash=True`` and the executed-event digests must
match exactly.  A single out-of-order event, stray RNG draw, or unordered
iteration anywhere in the stack changes the digest.
"""

from __future__ import annotations

import pytest

from repro.baselines.gossip import GossipPlan
from repro.core.network_sim import GuessSimulation
from repro.core.params import BadPongBehavior, ProtocolParams, SystemParams
from repro.experiments.runner import run_guess_config
from repro.faults.plan import BrownoutSpec, FaultPlan, PartitionWindow
from repro.freshness import CacheSizing, FreshnessPlan
from repro.observe.plan import ObservationPlan
from repro.resilience import (
    ChurnStorm,
    FlashCrowd,
    ResiliencePolicy,
    ScenarioPlan,
)

DURATION = 400.0

#: A fully armed observation plan: span recording plus a windowed shared
#: registry.  Used to assert the invisibility contract — attaching it
#: must reproduce every pinned digest bit for bit.
FULL_OBSERVATION = ObservationPlan(
    spans=True, registry=True, registry_window=50.0
)


def run_once(seed: int, *, percent_bad: float = 0.0,
             behavior: BadPongBehavior = BadPongBehavior.DEAD,
             faults: FaultPlan | None = None, probe_retries: int = 0,
             observe: ObservationPlan | None = None,
             scheduler: str = "heap",
             scenarios: ScenarioPlan | None = None,
             resilience: ResiliencePolicy | None = None,
             gossip: GossipPlan | None = None,
             freshness: FreshnessPlan | None = None):
    """One small, full-featured run; returns (digest, report)."""
    sim = GuessSimulation(
        SystemParams(
            network_size=100,
            percent_bad_peers=percent_bad,
            bad_pong_behavior=behavior,
        ),
        ProtocolParams(cache_size=30, probe_retries=probe_retries),
        seed=seed,
        faults=faults,
        trace_hash=True,
        observe=observe,
        scheduler=scheduler,
        scenarios=scenarios,
        resilience=resilience,
        gossip=gossip,
        freshness=freshness,
    )
    sim.run(DURATION)
    report = sim.report()
    return sim.trace_digest, report


class TestSameSeedBitForBit:
    def test_trace_digests_identical(self):
        digest_a, report_a = run_once(7)
        digest_b, report_b = run_once(7)
        assert digest_a is not None
        assert digest_a == digest_b
        assert report_a.probes_per_query == report_b.probes_per_query
        assert report_a.unsatisfied_rate == report_b.unsatisfied_rate
        assert report_a.queries == report_b.queries

    def test_different_seeds_diverge(self):
        digest_a, _ = run_once(7)
        digest_b, _ = run_once(8)
        assert digest_a != digest_b

    @pytest.mark.parametrize(
        "behavior", [BadPongBehavior.DEAD, BadPongBehavior.BAD, BadPongBehavior.GOOD]
    )
    def test_malicious_rosters_are_deterministic(self, behavior):
        """Regression for the set-ordered attack rosters (RD003 fixes).

        ``AttackDirectory.sample_malicious`` / ``sample_good`` draw from
        sets of live peers; before they sorted their pools, the pong
        contents depended on set iteration order.  Colluding ``BAD`` pongs
        exercise ``sample_malicious`` on every probe of a malicious peer.
        """
        digest_a, report_a = run_once(11, percent_bad=10.0, behavior=behavior)
        digest_b, report_b = run_once(11, percent_bad=10.0, behavior=behavior)
        assert digest_a == digest_b
        assert report_a.probes_per_query == report_b.probes_per_query

    def test_trace_digest_none_without_sanitizer(self):
        sim = GuessSimulation(
            SystemParams(network_size=50), ProtocolParams(), seed=3
        )
        sim.run(50.0)
        assert sim.trace_digest is None


class TestGoldenDigests:
    """Cross-version pins for the exact event stream.

    The in-process comparisons above catch *nondeterminism*; these catch
    *drift*: an optimization that is deterministic but subtly reorders
    events, perturbs an RNG draw, or changes a float would pass every
    same-seed test while silently changing every result in the repo.

    The digests were recorded before the PR-2 kernel optimizations
    (Fenwick-backed friend sampling, running-sum health snapshots,
    no-copy eviction contests, args-based event dispatch) and those
    optimizations were required to reproduce them bit-for-bit.  They
    must never drift; a legitimate semantic change to the simulation
    must say so loudly by re-recording them in the same commit.
    """

    def test_clean_network_digest_pinned(self):
        digest, report = run_once(7)
        assert digest == "6433f3abe18fda0f316241089d67313b"
        assert report.queries > 0

    def test_colluding_attack_digest_pinned(self):
        digest, _ = run_once(
            11, percent_bad=10.0, behavior=BadPongBehavior.BAD
        )
        assert digest == "23d74325e25c2c9e44279d38a317edbe"

    def test_packet_loss_retry_digest_pinned(self):
        """Third pin: a packet-loss cell with retries enabled.

        The digest *equals* the clean pin on purpose: the executed event
        schedule (query bursts, pings, churn) comes from RNG streams that
        loss and retry draws cannot touch, and probe outcomes resolve
        inside the query event rather than as scheduled events (see
        ``TestFaultDeterminism.test_faults_actually_change_the_run``).
        If loss/retry handling ever starts scheduling events or stealing
        draws from protocol streams, this digest moves and the report
        assertions below pin the measured behaviour that must differ
        from the clean run.
        """
        digest, report = run_once(
            7, faults=FaultPlan(loss_rate=0.05), probe_retries=2
        )
        assert digest == "6433f3abe18fda0f316241089d67313b"
        assert report.spurious_timeout_probes > 0
        assert report.probe_retries > 0
        assert report.retry_recovered_probes > 0


class TestGossipAssistedPins:
    """Fourth golden pin: the gossip-assisted GUESS hybrid.

    A fixed-seed cell with epidemic pong dissemination armed
    (``GossipPlan(fanout=2, ttl=2)``) is pinned under both schedulers,
    and the *disabled* plan (``fanout=0``) must be contractually
    invisible — it reproduces every pre-gossip pin bit for bit, because
    :meth:`GossipRelay.from_plan` returns ``None`` and the ping path
    keeps its exact pre-gossip branch.
    """

    #: The armed cell actually disseminates: the digest must differ from
    #: the clean pin (gossip hops are scheduled events) and must never
    #: drift across versions.  Re-pinned when query-reply pongs started
    #: seeding rumors too (previously only ping harvests did — the armed
    #: relay now schedules strictly more gossip hops; the old digest was
    #: 867064cac1a1a5ab827994c71d74b2fb).
    ARMED = GossipPlan(fanout=2, ttl=2)
    PIN = "02dded03f40b06909cb76f0b6d7c07f3"

    def test_armed_gossip_digest_pinned(self):
        digest, report = run_once(7, gossip=self.ARMED)
        assert digest == self.PIN
        assert report.gossip_rumors > 0
        assert report.gossip_pushes > 0
        assert report.gossip_imports > 0

    def test_armed_gossip_pin_reproduced_on_wheel(self):
        digest, heap_report = run_once(7, gossip=self.ARMED)
        wheel_digest, wheel_report = run_once(
            7, gossip=self.ARMED, scheduler="wheel"
        )
        assert digest == self.PIN
        assert wheel_digest == self.PIN
        assert heap_report == wheel_report

    def test_armed_gossip_actually_changes_the_run(self):
        clean_digest, _ = run_once(7)
        armed_digest, _ = run_once(7, gossip=self.ARMED)
        assert armed_digest != clean_digest

    def test_disabled_plan_reproduces_clean_pin(self):
        digest, report = run_once(7, gossip=GossipPlan(fanout=0))
        assert digest == "6433f3abe18fda0f316241089d67313b"
        assert report.gossip_rumors == 0
        assert report.gossip_pushes == 0

    def test_zero_ttl_plan_reproduces_clean_pin(self):
        digest, _ = run_once(7, gossip=GossipPlan(fanout=2, ttl=0))
        assert digest == "6433f3abe18fda0f316241089d67313b"

    def test_disabled_plan_reproduces_attack_pin(self):
        digest, _ = run_once(
            11, percent_bad=10.0, behavior=BadPongBehavior.BAD,
            gossip=GossipPlan(fanout=0),
        )
        assert digest == "23d74325e25c2c9e44279d38a317edbe"

    def test_disabled_plan_reproduces_loss_retry_pin(self):
        digest, _ = run_once(
            7, faults=FaultPlan(loss_rate=0.05), probe_retries=2,
            gossip=GossipPlan(fanout=0),
        )
        assert digest == "6433f3abe18fda0f316241089d67313b"

    def test_parallel_trials_identical_to_serial(self):
        """``--workers 2 --verify-parallel`` for the gossip cell: trial
        fan-out over a process pool returns byte-identical reports."""
        kwargs = dict(
            duration=120.0,
            warmup=40.0,
            trials=2,
            base_seed=29,
            gossip=self.ARMED,
        )
        serial = run_guess_config(
            SystemParams(network_size=60), ProtocolParams(cache_size=15),
            workers=1, **kwargs,
        )
        parallel = run_guess_config(
            SystemParams(network_size=60), ProtocolParams(cache_size=15),
            workers=2, **kwargs,
        )
        assert serial == parallel
        assert sum(r.gossip_pushes for r in serial) > 0


class TestFreshnessPins:
    """Fifth golden pin: push invalidation + heterogeneous cache sizing.

    A fixed-seed cell with the freshness layer armed (budgeted departure
    notices, interest-path forwarding, power-law cache sizing) is pinned
    under both schedulers, and a *disabled* :class:`FreshnessPlan` must
    be contractually invisible — :meth:`FreshnessMediator.from_plan`
    returns ``None`` for it, so every earlier pin reproduces bit for
    bit.
    """

    #: The armed cell actually invalidates: purged receivers forward the
    #: notice as scheduled ``freshness`` events, so the digest must
    #: differ from the clean pin and never drift across versions.
    ARMED = FreshnessPlan(
        notify_budget=3, depth=2, sizing=CacheSizing(policy="power-law")
    )
    PIN = "a28d28449b4e7e6f6317be5f8ab6a815"

    def test_armed_freshness_digest_pinned(self):
        digest, report = run_once(7, freshness=self.ARMED)
        assert digest == self.PIN
        assert report.freshness_notices > 0
        assert report.freshness_notices_delivered > 0
        assert report.freshness_purges > 0
        assert report.freshness_refresh_imports > 0

    def test_armed_freshness_pin_reproduced_on_wheel(self):
        digest, heap_report = run_once(7, freshness=self.ARMED)
        wheel_digest, wheel_report = run_once(
            7, freshness=self.ARMED, scheduler="wheel"
        )
        assert digest == self.PIN
        assert wheel_digest == self.PIN
        assert heap_report == wheel_report

    def test_armed_freshness_actually_changes_the_run(self):
        clean_digest, _ = run_once(7)
        armed_digest, _ = run_once(7, freshness=self.ARMED)
        assert armed_digest != clean_digest

    def test_disabled_plan_reproduces_clean_pin(self):
        digest, report = run_once(7, freshness=FreshnessPlan())
        assert digest == "6433f3abe18fda0f316241089d67313b"
        assert report.freshness_notices == 0
        assert report.freshness_purges == 0

    def test_zero_depth_plan_reproduces_clean_pin(self):
        digest, _ = run_once(
            7, freshness=FreshnessPlan(notify_budget=4, depth=0)
        )
        assert digest == "6433f3abe18fda0f316241089d67313b"

    def test_disabled_plan_reproduces_attack_pin(self):
        digest, _ = run_once(
            11, percent_bad=10.0, behavior=BadPongBehavior.BAD,
            freshness=FreshnessPlan(),
        )
        assert digest == "23d74325e25c2c9e44279d38a317edbe"

    def test_disabled_plan_reproduces_loss_retry_pin(self):
        digest, _ = run_once(
            7, faults=FaultPlan(loss_rate=0.05), probe_retries=2,
            freshness=FreshnessPlan(),
        )
        assert digest == "6433f3abe18fda0f316241089d67313b"

    def test_disabled_plan_reproduces_armed_gossip_pin(self):
        digest, _ = run_once(
            7, gossip=TestGossipAssistedPins.ARMED, freshness=FreshnessPlan()
        )
        assert digest == TestGossipAssistedPins.PIN

    def test_stale_split_is_recorded_without_a_plan(self):
        """The fresh/stale dead-probe split is pure accounting — it is
        live even with no plan, and never exceeds the dead totals."""
        _, report = run_once(7)
        total_dead = report.dead_probes + report.dead_pings
        assert 0 < report.stale_dead_probes <= total_dead
        assert report.fresh_dead_probes == total_dead - report.stale_dead_probes

    def test_parallel_trials_identical_to_serial(self):
        """``--workers 2 --verify-parallel`` for the freshness cell:
        trial fan-out over a process pool returns byte-identical
        reports (the plan, nested sizing included, must pickle)."""
        # Notices fire only at (post-warmup) departures, so this cell
        # runs longer than the gossip one to guarantee a few deaths.
        kwargs = dict(
            duration=280.0,
            warmup=20.0,
            trials=2,
            base_seed=31,
            freshness=self.ARMED,
        )
        serial = run_guess_config(
            SystemParams(network_size=60), ProtocolParams(cache_size=15),
            workers=1, **kwargs,
        )
        parallel = run_guess_config(
            SystemParams(network_size=60), ProtocolParams(cache_size=15),
            workers=2, **kwargs,
        )
        assert serial == parallel
        assert sum(r.freshness_notices for r in serial) > 0


class TestWheelSchedulerPins:
    """Every golden pin reproduces under ``scheduler="wheel"``.

    The timing wheel replaces the engine's heap with a calendar queue;
    its firing-order contract is *bit-for-bit* identity, and these pins
    are the end-to-end proof: the full protocol stack — churn, pings,
    query bursts, colluding pongs, packet loss with retries — produces
    the identical executed-event digest on either scheduler.
    """

    def test_clean_pin_reproduced_on_wheel(self):
        digest, report = run_once(7, scheduler="wheel")
        assert digest == "6433f3abe18fda0f316241089d67313b"
        assert report.queries > 0

    def test_attack_pin_reproduced_on_wheel(self):
        digest, _ = run_once(
            11, percent_bad=10.0, behavior=BadPongBehavior.BAD,
            scheduler="wheel",
        )
        assert digest == "23d74325e25c2c9e44279d38a317edbe"

    def test_loss_retry_pin_reproduced_on_wheel(self):
        digest, report = run_once(
            7, faults=FaultPlan(loss_rate=0.05), probe_retries=2,
            scheduler="wheel",
        )
        assert digest == "6433f3abe18fda0f316241089d67313b"
        assert report.spurious_timeout_probes > 0

    def test_wheel_and_heap_reports_identical(self):
        _, heap_report = run_once(7)
        _, wheel_report = run_once(7, scheduler="wheel")
        assert heap_report == wheel_report


class TestObservationInvisibility:
    """Observers attached ⇒ every pinned digest still bit-identical.

    The observability layer's core contract: span recording and the
    shared metrics registry only append to observer-owned state — they
    never schedule events, draw randomness, or mutate protocol state —
    so enabling them reproduces the golden digests exactly.
    """

    def test_clean_pin_reproduced_with_observation(self):
        digest, report = run_once(7, observe=FULL_OBSERVATION)
        assert digest == "6433f3abe18fda0f316241089d67313b"
        assert report.queries > 0

    def test_attack_pin_reproduced_with_observation(self):
        digest, _ = run_once(
            11, percent_bad=10.0, behavior=BadPongBehavior.BAD,
            observe=FULL_OBSERVATION,
        )
        assert digest == "23d74325e25c2c9e44279d38a317edbe"

    def test_loss_retry_pin_reproduced_with_observation(self):
        digest, _ = run_once(
            7, faults=FaultPlan(loss_rate=0.05), probe_retries=2,
            observe=FULL_OBSERVATION,
        )
        assert digest == "6433f3abe18fda0f316241089d67313b"

    def test_reports_identical_with_and_without_observation(self):
        _, plain = run_once(7)
        _, observed = run_once(7, observe=FULL_OBSERVATION)
        assert plain == observed


class TestScenarioInvisibility:
    """The resilience layer's side of the determinism contract.

    An all-noop :class:`ScenarioPlan` and an all-off (default)
    :class:`ResiliencePolicy` must be *contractually invisible* — the
    identical event stream, pinned against the golden digests above.
    Armed scenarios must be deterministic while actually changing the
    run.
    """

    #: All components present but disabled: zero-fraction storm,
    #: unit-multiplier crowd.  Must be indistinguishable from no plan.
    NOOP = ScenarioPlan(
        storms=(ChurnStorm(start=100.0, width=20.0, fraction=0.0),),
        crowds=(FlashCrowd(start=100.0, end=300.0, multiplier=1.0),),
    )

    STORMY = ScenarioPlan(
        storms=(ChurnStorm(start=150.0, width=20.0, fraction=0.4),),
        crowds=(FlashCrowd(start=150.0, end=350.0, multiplier=3.0),),
    )

    def test_noop_plan_reproduces_clean_pin(self):
        digest, _ = run_once(
            7, scenarios=self.NOOP, resilience=ResiliencePolicy()
        )
        assert digest == "6433f3abe18fda0f316241089d67313b"

    def test_noop_plan_reproduces_attack_pin(self):
        digest, _ = run_once(
            11, percent_bad=10.0, behavior=BadPongBehavior.BAD,
            scenarios=self.NOOP, resilience=ResiliencePolicy(),
        )
        assert digest == "23d74325e25c2c9e44279d38a317edbe"

    def test_noop_plan_reproduces_loss_retry_pin(self):
        digest, _ = run_once(
            7, faults=FaultPlan(loss_rate=0.05), probe_retries=2,
            scenarios=self.NOOP, resilience=ResiliencePolicy(),
        )
        assert digest == "6433f3abe18fda0f316241089d67313b"

    def test_reports_identical_with_and_without_noop_plan(self):
        _, plain = run_once(7)
        _, gated = run_once(
            7, scenarios=self.NOOP, resilience=ResiliencePolicy()
        )
        assert plain == gated

    def test_stormy_run_is_deterministic(self):
        digest_a, report_a = run_once(7, scenarios=self.STORMY)
        digest_b, report_b = run_once(7, scenarios=self.STORMY)
        assert digest_a == digest_b
        assert report_a == report_b

    def test_storm_actually_changes_the_run(self):
        # Unlike faults, a storm schedules real events (forced deaths)
        # and the crowd re-times query bursts, so the digest must move.
        clean_digest, clean = run_once(7)
        storm_digest, stormy = run_once(7, scenarios=self.STORMY)
        assert storm_digest != clean_digest
        assert stormy.deaths > clean.deaths

    def test_armed_resilience_is_deterministic_under_storm(self):
        digest_a, report_a = run_once(
            7, probe_retries=2,
            scenarios=self.STORMY, resilience=ResiliencePolicy.all_on(),
        )
        digest_b, report_b = run_once(
            7, probe_retries=2,
            scenarios=self.STORMY, resilience=ResiliencePolicy.all_on(),
        )
        assert digest_a == digest_b
        assert report_a == report_b

    def test_stormy_pin_reproduced_on_wheel(self):
        heap_digest, heap_report = run_once(7, scenarios=self.STORMY)
        wheel_digest, wheel_report = run_once(
            7, scenarios=self.STORMY, scheduler="wheel"
        )
        assert wheel_digest == heap_digest
        assert wheel_report == heap_report


class TestFaultDeterminism:
    """The fault subsystem's side of the determinism contract.

    An all-zeros :class:`FaultPlan` must be *contractually invisible* —
    not merely equivalent output, but the identical event stream, pinned
    against the golden digests above.  Non-trivial plans must be fully
    deterministic (same seed + same plan ⇒ same digest) while actually
    changing the run.
    """

    FAULTY = FaultPlan(
        loss_rate=0.05,
        jitter=0.02,
        brownouts=BrownoutSpec(rate=0.001, duration=30.0),
        partitions=(PartitionWindow(start=150.0, end=250.0, salt=7),),
    )

    def test_all_zero_plan_reproduces_pinned_golden_digest(self):
        digest, _ = run_once(7, faults=FaultPlan())
        assert digest == "6433f3abe18fda0f316241089d67313b"

    def test_all_zero_plan_invisible_under_attack_roster(self):
        digest, _ = run_once(
            11, percent_bad=10.0, behavior=BadPongBehavior.BAD,
            faults=FaultPlan(),
        )
        assert digest == "23d74325e25c2c9e44279d38a317edbe"

    def test_faulty_run_is_deterministic(self):
        digest_a, report_a = run_once(7, faults=self.FAULTY)
        digest_b, report_b = run_once(7, faults=self.FAULTY)
        assert digest_a == digest_b
        assert report_a.probes_per_query == report_b.probes_per_query
        assert (
            report_a.spurious_timeout_probes
            == report_b.spurious_timeout_probes
        )

    def test_faults_actually_change_the_run(self):
        # The executed *event schedule* (queries, pings, churn) comes from
        # streams faults cannot touch, so the digest may legitimately
        # match the clean run; the measured behaviour must not.
        _, clean = run_once(7)
        _, faulty = run_once(7, faults=self.FAULTY)
        assert faulty.spurious_timeout_probes + faulty.spurious_dead_pings > 0
        assert faulty.wrongful_evictions > 0
        assert clean.spurious_timeout_probes == 0
        assert faulty.probes_per_query != clean.probes_per_query

    def test_retry_enabled_run_is_deterministic(self):
        plan = FaultPlan(loss_rate=0.1)
        digest_a, report_a = run_once(7, faults=plan, probe_retries=2)
        digest_b, report_b = run_once(7, faults=plan, probe_retries=2)
        assert digest_a == digest_b
        assert report_a.retry_recovery_rate == report_b.retry_recovery_rate
        assert report_a.probe_retries + report_a.ping_retries > 0
        assert report_a.retry_recovered_probes + report_a.ping_retry_recoveries > 0
