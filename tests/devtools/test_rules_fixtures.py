"""Fixture-corpus tests: every rule fires where expected and nowhere else.

Each file under ``cases/`` is a small Python module stored with a
``.py.txt`` extension (so the repository self-lint never walks it) and a
two-line header:

* ``# lint-path: <virtual path>`` — the path the module is linted under,
  which drives the path-scoped rules (RD001's rng-module exemption,
  RD002's repro-package scope, RD005's engine exemption);
* ``# expect: RD001:6 RD003:12 ...`` — the exact ``rule:line`` findings
  the linter must produce (omitted or empty = must be clean);
* ``# expect-errors: N`` — optionally, the exact number of file-level
  errors (malformed/unknown pragmas).

The corpus doubles as executable documentation of each rule's positive
cases, accepted idioms, and suppression pragma.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Tuple

import pytest

from repro.devtools import lint_source

CASES_DIR = Path(__file__).parent / "cases"
CASE_FILES = sorted(CASES_DIR.glob("*.py.txt"))

_LINT_PATH_RE = re.compile(r"#\s*lint-path:\s*(\S+)")
_EXPECT_RE = re.compile(r"#\s*expect:\s*(.*)")
_EXPECT_ERRORS_RE = re.compile(r"#\s*expect-errors:\s*(\d+)")


def load_case(path: Path) -> Tuple[str, str, List[Tuple[str, int]], int]:
    """Parse one fixture: (source, virtual path, expected findings, errors)."""
    source = path.read_text(encoding="utf-8")
    path_match = _LINT_PATH_RE.search(source)
    assert path_match is not None, f"{path.name}: missing '# lint-path:' header"
    expected: List[Tuple[str, int]] = []
    expect_match = _EXPECT_RE.search(source)
    if expect_match:
        for token in expect_match.group(1).split():
            rule_id, line = token.split(":")
            expected.append((rule_id, int(line)))
    errors_match = _EXPECT_ERRORS_RE.search(source)
    expected_errors = int(errors_match.group(1)) if errors_match else 0
    return source, path_match.group(1), sorted(expected), expected_errors


def test_corpus_is_not_empty():
    assert len(CASE_FILES) >= 10, "fixture corpus looks truncated"


def test_corpus_covers_every_rule():
    """Each of RD001-RD005 has at least one firing fixture."""
    covered = set()
    for case in CASE_FILES:
        _, _, expected, _ = load_case(case)
        covered.update(rule_id for rule_id, _ in expected)
    assert covered >= {"RD001", "RD002", "RD003", "RD004", "RD005"}


@pytest.mark.parametrize("case", CASE_FILES, ids=lambda p: p.name[: -len(".py.txt")])
def test_fixture(case: Path):
    source, lint_path, expected, expected_errors = load_case(case)
    result = lint_source(source, lint_path)
    got = sorted((v.rule.id, v.line) for v in result.violations)
    assert got == expected, "\n".join(
        ["findings diverged from the # expect: header:"]
        + [v.render() for v in result.violations]
    )
    assert len(result.errors) == expected_errors, result.errors
