"""Self-lint: the repository must satisfy its own determinism contract.

This is the wiring that makes every future PR honour RD001-RD005: the
tier-1 suite fails (here, and in CI via the same command) the moment a
new wall-clock read, global RNG draw, unordered-iteration hazard, float
timestamp equality, or engine-heap poke lands without an explicit
``# repro: allow-*`` pragma.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools import lint_paths
from repro.devtools.reporter import render_result

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Same targets as the CI invocation:
#: ``python -m repro.devtools.lint src/ tests/ benchmarks/``.
LINTED_TREES = ("src", "tests", "benchmarks")


def test_repository_is_determinism_clean():
    result = lint_paths([REPO_ROOT / tree for tree in LINTED_TREES])
    assert result.files_checked > 100, "lint walked suspiciously few files"
    assert result.ok, "\n" + render_result(result)
