"""CLI behaviour: exit codes, rule docs, path expansion."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import main, parse_rule_selection
from repro.devtools.linter import iter_python_files, lint_paths
from repro.devtools.rules import (
    EFFECT_RULE_IDS,
    FILE_RULE_IDS,
    ORDERED_RULES,
    RULES,
    VISITOR_FACTORIES,
)


class TestRegistry:
    def test_ten_rules_registered(self):
        assert sorted(RULES) == [f"RD{n:03d}" for n in range(1, 11)]
        assert sorted(FILE_RULE_IDS | EFFECT_RULE_IDS) == sorted(RULES)

    def test_every_per_file_rule_has_a_visitor(self):
        # The effect rules RD006-RD010 are whole-program: they run in the
        # effect engine, not as per-file AST visitors.
        assert sorted(VISITOR_FACTORIES) == sorted(FILE_RULE_IDS)

    def test_slugs_are_unique(self):
        slugs = [rule.slug for rule in ORDERED_RULES]
        assert len(slugs) == len(set(slugs))


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path: Path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert main([str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path: Path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(
            "import random\nx = random.random()\n", encoding="utf-8"
        )
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "RD001" in out
        assert "dirty.py:2" in out

    def test_syntax_error_exits_two(self, tmp_path: Path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n", encoding="utf-8")
        assert main([str(target)]) == 2
        assert "syntax error" in capsys.readouterr().out

    def test_errors_take_precedence_over_findings(self, tmp_path: Path, capsys):
        (tmp_path / "dirty.py").write_text(
            "import random\nx = random.random()\n", encoding="utf-8"
        )
        (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 2

    def test_directory_expansion_skips_pycache(self, tmp_path: Path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n", encoding="utf-8")
        cache = tmp_path / "pkg" / "__pycache__"
        cache.mkdir()
        (cache / "mod.cpython-311.py").write_text("x = 1\n", encoding="utf-8")
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["mod.py"]

    def test_non_py_files_are_ignored(self, tmp_path: Path):
        (tmp_path / "case.py.txt").write_text(
            "import random\nx = random.random()\n", encoding="utf-8"
        )
        result = lint_paths([tmp_path])
        assert result.files_checked == 0
        assert result.ok

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_explain_known_rule(self, capsys):
        assert main(["--explain", "rd003"]) == 0
        out = capsys.readouterr().out
        assert "RD003" in out
        assert "allow-unordered-iter" in out

    def test_explain_unknown_rule(self, capsys):
        assert main(["--explain", "RD999"]) == 2

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2


class TestRuleSelection:
    def test_single_ids_and_ranges(self):
        assert parse_rule_selection("RD001,RD003") == {"RD001", "RD003"}
        assert parse_rule_selection("RD006-RD010") == {
            "RD006",
            "RD007",
            "RD008",
            "RD009",
            "RD010",
        }
        assert parse_rule_selection("rd001-rd002,RD005") == {
            "RD001",
            "RD002",
            "RD005",
        }

    def test_bad_tokens_raise(self):
        for spec in ("RD999", "RD005-RD001", "bogus", ""):
            with pytest.raises(ValueError):
                parse_rule_selection(spec)

    def test_unknown_rule_spec_exits_two(self, tmp_path: Path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert main(["--rules", "RD999", str(target)]) == 2

    def test_rule_subset_skips_other_findings(self, tmp_path: Path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(
            "import random\nx = random.random()\n", encoding="utf-8"
        )
        # RD001 would fire; restricting to RD002 must come back clean.
        assert main(["--rules", "RD002", str(target)]) == 0


class TestEffectsCli:
    def test_effect_rules_clean_outside_repro_packages(
        self, tmp_path: Path, capsys
    ):
        # Files that are not importable as repro.* are out of every
        # contract's scope.
        target = tmp_path / "script.py"
        target.write_text("x = open('f').read()\n", encoding="utf-8")
        assert main(["--rules", "RD006-RD010", str(target)]) == 0

    def test_effect_violation_exits_one(self, tmp_path: Path, capsys):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        target = pkg / "leaky.py"
        target.write_text(
            "def dump(state):\n    return open('x', 'w').write(state)\n",
            encoding="utf-8",
        )
        assert main(["--rules", "RD010", str(target)]) == 1
        out = capsys.readouterr().out
        assert "RD010" in out
        assert "leaky.py:2" in out

    def test_effects_report_requires_effect_rules(self, tmp_path: Path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert main(["--rules", "RD001", "--effects-report", str(target)]) == 2

    def test_effects_report_written_to_file(self, tmp_path: Path, capsys):
        pkg = tmp_path / "repro" / "analysis"
        pkg.mkdir(parents=True)
        (pkg / "stats.py").write_text(
            "def mean(xs):\n    return sum(xs) / len(xs)\n", encoding="utf-8"
        )
        report = tmp_path / "effects.tsv"
        assert (
            main(
                [
                    "--rules",
                    "RD006-RD010",
                    "--effects-report",
                    str(report),
                    str(pkg),
                ]
            )
            == 0
        )
        assert "function\teffects\tdirect" in report.read_text(encoding="utf-8")

    def test_bad_contract_file_exits_two(self, tmp_path: Path, capsys):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "mod.py").write_text("x = 1\n", encoding="utf-8")
        contracts = tmp_path / "contracts.toml"
        contracts.write_text(
            '[[contract]]\nrule = "RD042"\n', encoding="utf-8"
        )
        assert (
            main(
                [
                    "--rules",
                    "RD006-RD010",
                    "--contracts",
                    str(contracts),
                    str(pkg),
                ]
            )
            == 2
        )
