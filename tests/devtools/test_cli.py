"""CLI behaviour: exit codes, rule docs, path expansion."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.lint import main
from repro.devtools.linter import iter_python_files, lint_paths
from repro.devtools.rules import ORDERED_RULES, RULES, VISITOR_FACTORIES


class TestRegistry:
    def test_five_rules_registered(self):
        assert sorted(RULES) == ["RD001", "RD002", "RD003", "RD004", "RD005"]

    def test_every_rule_has_a_visitor(self):
        assert sorted(VISITOR_FACTORIES) == sorted(RULES)

    def test_slugs_are_unique(self):
        slugs = [rule.slug for rule in ORDERED_RULES]
        assert len(slugs) == len(set(slugs))


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path: Path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert main([str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path: Path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(
            "import random\nx = random.random()\n", encoding="utf-8"
        )
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "RD001" in out
        assert "dirty.py:2" in out

    def test_syntax_error_exits_one(self, tmp_path: Path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n", encoding="utf-8")
        assert main([str(target)]) == 1
        assert "syntax error" in capsys.readouterr().out

    def test_directory_expansion_skips_pycache(self, tmp_path: Path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n", encoding="utf-8")
        cache = tmp_path / "pkg" / "__pycache__"
        cache.mkdir()
        (cache / "mod.cpython-311.py").write_text("x = 1\n", encoding="utf-8")
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["mod.py"]

    def test_non_py_files_are_ignored(self, tmp_path: Path):
        (tmp_path / "case.py.txt").write_text(
            "import random\nx = random.random()\n", encoding="utf-8"
        )
        result = lint_paths([tmp_path])
        assert result.files_checked == 0
        assert result.ok

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_explain_known_rule(self, capsys):
        assert main(["--explain", "rd003"]) == 0
        out = capsys.readouterr().out
        assert "RD003" in out
        assert "allow-unordered-iter" in out

    def test_explain_unknown_rule(self, capsys):
        assert main(["--explain", "RD999"]) == 2

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2
