"""Unit tests for call-graph construction and effect propagation.

Covers the three properties the contract checker leans on:

* attribute-call resolution (module aliases, ``self`` with base-class
  walk, constructor-bound locals, the unique-definer fallback and its
  ambiguity blocklist);
* cycle tolerance — mutual recursion reaches a fixpoint and both parties
  carry the cycle's effects;
* unknown-call conservatism — calls the graph cannot resolve add no
  effects (the dynamic trace-hash pins backstop them) but are *counted*,
  so the report can show how much of the graph is dark.
"""

from __future__ import annotations

from typing import Dict

from repro.devtools.effects.callgraph import (
    AMBIGUOUS_METHOD_NAMES,
    build_program,
)
from repro.devtools.effects.inference import apply_intrinsics, propagate
from repro.devtools.effects.model import Effect


def program_of(modules: Dict[str, str]):
    """Build a Program from ``{dotted module name: source}``."""
    sources = {
        name: ("src/" + name.replace(".", "/") + ".py", text)
        for name, text in modules.items()
    }
    return build_program(sources)


def edges(program, qualname):
    return {edge.callee for edge in program.functions[qualname].calls}


class TestResolution:
    def test_module_alias_attribute_call(self):
        program = program_of(
            {
                "repro.alpha": "def helper():\n    return 1\n",
                "repro.beta": (
                    "import repro.alpha as alpha\n\n"
                    "def caller():\n    return alpha.helper()\n"
                ),
            }
        )
        assert "repro.alpha.helper" in edges(program, "repro.beta.caller")

    def test_from_import_name_call(self):
        program = program_of(
            {
                "repro.alpha": "def helper():\n    return 1\n",
                "repro.beta": (
                    "from repro.alpha import helper\n\n"
                    "def caller():\n    return helper()\n"
                ),
            }
        )
        assert "repro.alpha.helper" in edges(program, "repro.beta.caller")

    def test_self_method_with_base_class_walk(self):
        program = program_of(
            {
                "repro.alpha": (
                    "class Base:\n"
                    "    def step(self):\n"
                    "        return 0\n"
                    "\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        return self.step()\n"
                ),
            }
        )
        assert "repro.alpha.Base.step" in edges(program, "repro.alpha.Child.run")

    def test_constructor_bound_local(self):
        program = program_of(
            {
                "repro.alpha": (
                    "class Worker:\n"
                    "    def run_task(self):\n"
                    "        return 1\n"
                    "\n"
                    "def main():\n"
                    "    worker = Worker()\n"
                    "    return worker.run_task()\n"
                ),
            }
        )
        assert "repro.alpha.Worker.run_task" in edges(program, "repro.alpha.main")

    def test_unique_definer_fallback(self):
        # No type info for `thing`, but exactly one class in the whole
        # program defines `frobnicate`, so the edge resolves to it.
        program = program_of(
            {
                "repro.alpha": (
                    "class Gadget:\n"
                    "    def frobnicate(self):\n"
                    "        return 1\n"
                ),
                "repro.beta": (
                    "def poke(thing):\n    return thing.frobnicate()\n"
                ),
            }
        )
        assert "repro.alpha.Gadget.frobnicate" in edges(program, "repro.beta.poke")

    def test_ambiguous_names_never_fall_back(self):
        # `cancel` is on the blocklist: concurrent.futures.Future.cancel
        # would otherwise be mistaken for EventHandle.cancel.
        assert "cancel" in AMBIGUOUS_METHOD_NAMES
        program = program_of(
            {
                "repro.alpha": (
                    "class Handle:\n"
                    "    def cancel(self):\n"
                    "        return 1\n"
                ),
                "repro.beta": (
                    "def stop(thing):\n    return thing.cancel()\n"
                ),
            }
        )
        assert "repro.alpha.Handle.cancel" not in edges(program, "repro.beta.stop")
        assert program.functions["repro.beta.stop"].unknown_calls >= 1


class TestPropagation:
    def test_cycle_reaches_fixpoint_and_shares_effects(self):
        program = program_of(
            {
                "repro.alpha": (
                    "def ping(rng, n):\n"
                    "    if n <= 0:\n"
                    "        return rng.random()\n"
                    "    return pong(rng, n - 1)\n"
                    "\n"
                    "def pong(rng, n):\n"
                    "    return ping(rng, n)\n"
                ),
            }
        )
        apply_intrinsics(program)
        table = propagate(program)
        assert Effect.RNG_DRAW in table.effects_of("repro.alpha.ping")
        assert Effect.RNG_DRAW in table.effects_of("repro.alpha.pong")

    def test_chain_walks_from_root_to_origin(self):
        program = program_of(
            {
                "repro.alpha": (
                    "def leaf():\n"
                    "    return open('x').read()\n"
                    "\n"
                    "def mid():\n"
                    "    return leaf()\n"
                    "\n"
                    "def root():\n"
                    "    return mid()\n"
                ),
            }
        )
        apply_intrinsics(program)
        table = propagate(program)
        chain = table.chain("repro.alpha.root", Effect.FILE_IO)
        assert chain == [
            "repro.alpha.root",
            "repro.alpha.mid",
            "repro.alpha.leaf",
        ]
        site = table.origin_site("repro.alpha.root", Effect.FILE_IO)
        assert site is not None and site.line == 2

    def test_unknown_calls_add_no_effects(self):
        program = program_of(
            {
                "repro.alpha": (
                    "def caller(mystery):\n    return mystery()\n"
                ),
            }
        )
        apply_intrinsics(program)
        table = propagate(program)
        assert table.effects_of("repro.alpha.caller") == frozenset()
        assert program.functions["repro.alpha.caller"].unknown_calls >= 1

    def test_opaque_boundary_blocks_propagation(self):
        modules = {
            "repro.alpha": (
                "def effectful():\n"
                "    return open('x').read()\n"
                "\n"
                "def boundary():\n"
                "    return effectful()\n"
                "\n"
                "def root():\n"
                "    return boundary()\n"
            ),
        }
        program = program_of(modules)
        apply_intrinsics(program)
        table = propagate(program, opaque=("repro.alpha.boundary",))
        assert Effect.FILE_IO not in table.effects_of("repro.alpha.root")
        # Without the boundary the effect flows through.
        fresh = program_of(modules)
        apply_intrinsics(fresh)
        assert Effect.FILE_IO in propagate(fresh).effects_of("repro.alpha.root")

    def test_main_guard_is_not_module_level_code(self):
        program = program_of(
            {
                "repro.alpha": (
                    "def main():\n"
                    "    return open('x').read()\n"
                    "\n"
                    'if __name__ == "__main__":\n'
                    "    main()\n"
                ),
            }
        )
        apply_intrinsics(program)
        table = propagate(program)
        assert Effect.FILE_IO in table.effects_of("repro.alpha.main")
        assert table.effects_of("repro.alpha.<module>") == frozenset()
