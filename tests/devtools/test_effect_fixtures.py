"""Effect-contract fixture corpus: RD006-RD010 fire exactly as seeded.

Each file under ``effect_cases/`` is a miniature *program* (one or more
modules) stored with a ``.py.txt`` extension so the repository self-lint
never walks it:

* a header before the first section, containing
  ``# expect: RD006:repro.observe.support:2 ...`` — the exact
  ``rule:module:line`` findings the contract check must produce (empty or
  bare ``# expect:`` = must be clean);
* one or more ``# === module: <dotted name>`` sections; the section body
  is the module source, and finding lines are numbered *within* the
  section (first line after the marker is line 1).

The corpus runs against the **committed** ``effect_contracts.toml``, so
it doubles as a regression test of the real contract scopes: every rule
has at least one firing fixture and one clean twin.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.devtools.effects import analyze_sources
from repro.devtools.effects.contracts import Baseline, load_contracts
from repro.devtools.rules import EFFECT_RULE_IDS

CASES_DIR = Path(__file__).parent / "effect_cases"
CASE_FILES = sorted(CASES_DIR.glob("*.py.txt"))

_SECTION_RE = re.compile(r"^#\s*===\s*module:\s*(\S+)\s*$")
_EXPECT_RE = re.compile(r"^#\s*expect:\s*(.*)$")


def virtual_path(module: str) -> str:
    """The on-disk path a fixture module pretends to live at."""
    return "src/" + module.replace(".", "/") + ".py"


def load_case(
    path: Path,
) -> Tuple[Dict[str, Tuple[str, str]], List[Tuple[str, str, int]]]:
    """Parse one fixture into ``(sources, expected findings)``."""
    expected: List[Tuple[str, str, int]] = []
    sources: Dict[str, Tuple[str, str]] = {}
    current_module = None
    current_lines: List[str] = []

    def flush() -> None:
        if current_module is not None:
            sources[current_module] = (
                virtual_path(current_module),
                "\n".join(current_lines) + "\n",
            )

    for line in path.read_text(encoding="utf-8").splitlines():
        section = _SECTION_RE.match(line)
        if section:
            flush()
            current_module = section.group(1)
            current_lines = []
            continue
        if current_module is None:
            expect = _EXPECT_RE.match(line)
            if expect:
                for token in expect.group(1).split():
                    rule_id, module, lineno = token.rsplit(":", 2)
                    expected.append((rule_id, module, int(lineno)))
            continue
        current_lines.append(line)
    flush()
    assert sources, f"{path.name}: no '# === module:' sections"
    return sources, sorted(expected)


def test_corpus_covers_every_effect_rule():
    """Each of RD006-RD010 has at least one firing fixture and the corpus
    has at least one clean twin per rule family."""
    firing = set()
    for case in CASE_FILES:
        _, expected = load_case(case)
        firing.update(rule_id for rule_id, _, _ in expected)
    assert firing >= set(EFFECT_RULE_IDS)
    clean = [c for c in CASE_FILES if not load_case(c)[1]]
    assert len(clean) >= 5, "expected a clean twin per rule family"


@pytest.mark.parametrize(
    "case", CASE_FILES, ids=lambda p: p.name[: -len(".py.txt")]
)
def test_effect_fixture(case: Path):
    sources, expected = load_case(case)
    result = analyze_sources(
        sources,
        contracts=load_contracts(),
        baseline=Baseline(),
        rule_ids=set(EFFECT_RULE_IDS),
    )
    assert result.errors == [], result.errors
    path_to_module = {path: mod for mod, (path, _) in sources.items()}
    got = sorted(
        (v.rule.id, path_to_module[v.path], v.line) for v in result.violations
    )
    assert got == expected, "\n".join(
        ["findings diverged from the # expect: header:"]
        + [v.render() for v in result.violations]
    )
