"""Unit tests for suppression-pragma parsing."""

from __future__ import annotations

import ast

import pytest

from repro.devtools.pragmas import (
    PragmaError,
    PragmaIndex,
    SuppressionIndex,
    parse_pragma_comment,
    statement_extents,
)


class TestParsePragmaComment:
    def test_slug_form(self):
        assert parse_pragma_comment("# repro: allow-wallclock") == {"RD002"}

    def test_rule_id_form_is_case_insensitive(self):
        assert parse_pragma_comment("# repro: allow-RD001") == {"RD001"}
        assert parse_pragma_comment("# repro: allow-rd001") == {"RD001"}

    def test_comma_separated_list(self):
        ids = parse_pragma_comment(
            "# repro: allow-wallclock, allow-global-random"
        )
        assert ids == {"RD001", "RD002"}

    def test_trailing_prose_is_tolerated(self):
        ids = parse_pragma_comment(
            "# repro: allow-wallclock (reporting-only timing)"
        )
        assert ids == {"RD002"}

    def test_ordinary_comment_is_not_a_pragma(self):
        assert parse_pragma_comment("# reproduce figure 3") == set()
        assert parse_pragma_comment("# nothing to see") == set()

    def test_unknown_rule_raises(self):
        with pytest.raises(PragmaError):
            parse_pragma_comment("# repro: allow-wallclok")

    def test_malformed_pragma_raises(self):
        with pytest.raises(PragmaError):
            parse_pragma_comment("# repro: ignore everything")


class TestPragmaIndex:
    def test_maps_lines_to_rule_ids(self):
        source = "x = 1  # repro: allow-float-time-eq\ny = 2\n"
        index = PragmaIndex.from_source(source)
        assert index.suppresses("RD004", 1)
        assert not index.suppresses("RD004", 2)
        assert not index.suppresses("RD001", 1)

    def test_pragma_inside_string_literal_is_ignored(self):
        source = 's = "# repro: allow-wallclock"\n'
        index = PragmaIndex.from_source(source)
        assert not index.suppresses("RD002", 1)
        assert index.errors == []

    def test_typo_recorded_as_error(self):
        source = "x = 1  # repro: allow-nonsense\n"
        index = PragmaIndex.from_source(source)
        assert len(index.errors) == 1
        assert not index.suppresses("RD002", 1)

    def test_unparseable_source_yields_empty_index(self):
        index = PragmaIndex.from_source("def broken(:\n    '")
        assert index.lines() == {}


def suppression_index(source: str) -> SuppressionIndex:
    return SuppressionIndex.from_source(source, ast.parse(source))


class TestSuppressionIndex:
    def test_pragma_covers_continuation_lines(self):
        # The visitors report wrapped calls on the line of the offending
        # sub-expression; a pragma on the statement's first line must
        # still suppress it.
        source = (
            "x = compute(  # repro: allow-wallclock\n"
            "    time.time(),\n"
            "    base,\n"
            ")\n"
        )
        index = suppression_index(source)
        assert index.suppresses("RD002", 1)
        assert index.suppresses("RD002", 2)
        assert index.suppresses("RD002", 3)

    def test_compound_header_covered_but_not_body(self):
        source = (
            "for item in iterate(  # repro: allow-unordered-iter\n"
            "    graph.edges\n"
            "):\n"
            "    handle(item)\n"
        )
        index = suppression_index(source)
        assert index.suppresses("RD003", 2)
        # A header pragma never blankets the loop body.
        assert not index.suppresses("RD003", 4)

    def test_single_line_statements_unaffected(self):
        source = "x = 1  # repro: allow-wallclock\ny = 2\n"
        index = suppression_index(source)
        assert index.suppresses("RD002", 1)
        assert not index.suppresses("RD002", 2)

    def test_extents_skip_single_line_statements(self):
        tree = ast.parse("x = 1\ny = 2\n")
        assert statement_extents(tree) == []
