"""Unit tests for suppression-pragma parsing."""

from __future__ import annotations

import pytest

from repro.devtools.pragmas import PragmaError, PragmaIndex, parse_pragma_comment


class TestParsePragmaComment:
    def test_slug_form(self):
        assert parse_pragma_comment("# repro: allow-wallclock") == {"RD002"}

    def test_rule_id_form_is_case_insensitive(self):
        assert parse_pragma_comment("# repro: allow-RD001") == {"RD001"}
        assert parse_pragma_comment("# repro: allow-rd001") == {"RD001"}

    def test_comma_separated_list(self):
        ids = parse_pragma_comment(
            "# repro: allow-wallclock, allow-global-random"
        )
        assert ids == {"RD001", "RD002"}

    def test_trailing_prose_is_tolerated(self):
        ids = parse_pragma_comment(
            "# repro: allow-wallclock (reporting-only timing)"
        )
        assert ids == {"RD002"}

    def test_ordinary_comment_is_not_a_pragma(self):
        assert parse_pragma_comment("# reproduce figure 3") == set()
        assert parse_pragma_comment("# nothing to see") == set()

    def test_unknown_rule_raises(self):
        with pytest.raises(PragmaError):
            parse_pragma_comment("# repro: allow-wallclok")

    def test_malformed_pragma_raises(self):
        with pytest.raises(PragmaError):
            parse_pragma_comment("# repro: ignore everything")


class TestPragmaIndex:
    def test_maps_lines_to_rule_ids(self):
        source = "x = 1  # repro: allow-float-time-eq\ny = 2\n"
        index = PragmaIndex.from_source(source)
        assert index.suppresses("RD004", 1)
        assert not index.suppresses("RD004", 2)
        assert not index.suppresses("RD001", 1)

    def test_pragma_inside_string_literal_is_ignored(self):
        source = 's = "# repro: allow-wallclock"\n'
        index = PragmaIndex.from_source(source)
        assert not index.suppresses("RD002", 1)
        assert index.errors == []

    def test_typo_recorded_as_error(self):
        source = "x = 1  # repro: allow-nonsense\n"
        index = PragmaIndex.from_source(source)
        assert len(index.errors) == 1
        assert not index.suppresses("RD002", 1)

    def test_unparseable_source_yields_empty_index(self):
        index = PragmaIndex.from_source("def broken(:\n    '")
        assert index.lines() == {}
