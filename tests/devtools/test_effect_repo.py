"""Whole-repo effect self-check: the contracts hold, and every escape
hatch is load-bearing.

The first test is the static proof itself: RD006-RD010 over ``src/``
with the committed contracts and baseline produce zero findings.  The
rest demonstrate that each suppression is *necessary* — removing any one
pragma, baseline entry, or contract exemption makes the run fail — so
the escape hatches cannot silently rot into dead weight.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.devtools.effects import analyze_paths
from repro.devtools.effects.callgraph import build_program
from repro.devtools.effects.checker import check_effects
from repro.devtools.effects.contracts import (
    Baseline,
    BaselineEntry,
    load_baseline,
    load_contracts,
)
from repro.devtools.effects.driver import collect_sources
from repro.devtools.linter import iter_python_files
from repro.devtools.rules import EFFECT_RULE_IDS

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


@pytest.fixture(scope="module")
def repo_sources():
    sources, errors = collect_sources(iter_python_files([SRC]))
    assert not errors
    assert len(sources) > 50, "source collection walked suspiciously few modules"
    return sources


def run_check(sources, contracts=None, baseline=None):
    program = build_program(dict(sources))
    return check_effects(
        program,
        contracts if contracts is not None else load_contracts(),
        baseline if baseline is not None else load_baseline(),
        set(EFFECT_RULE_IDS),
    )


def test_repository_satisfies_all_effect_contracts():
    result, program = analyze_paths(iter_python_files([SRC]))
    assert result.errors == [], result.errors
    assert result.violations == [], "\n".join(
        v.render() for v in result.violations
    )
    assert len(program.functions) > 400, "call graph looks truncated"


def test_removing_baseline_entries_fails_the_run(repo_sources):
    result = run_check(repo_sources, baseline=Baseline())
    rules = {v.rule.id for v in result.violations}
    # The committed baseline carries exactly the specs_for_entry seed
    # re-derivation, accepted under both RD006 and RD009.
    assert {"RD006", "RD009"} <= rules, "\n".join(
        v.render() for v in result.violations
    )


def test_stale_baseline_entry_is_an_error(repo_sources):
    baseline = load_baseline()
    baseline.entries.append(
        BaselineEntry("RD010", "repro.sim.engine.no_such_function", "bogus")
    )
    result = run_check(repo_sources, baseline=baseline)
    assert any("stale baseline entry" in e for e in result.errors)


@pytest.mark.parametrize(
    "relpath, pragma, rule_id",
    [
        ("repro/faults/injector.py", "allow-effect-fault-substream", "RD007"),
        ("repro/sim/engine.py", "allow-effect-kernel-io", "RD010"),
    ],
)
def test_removing_any_pragma_fails_the_run(repo_sources, relpath, pragma, rule_id):
    module = relpath[: -len(".py")].replace("/", ".")
    path, source = repo_sources[module]
    assert pragma in source, f"{relpath} no longer carries {pragma}"
    mutated = dict(repo_sources)
    mutated[module] = (path, source.replace(pragma, "allow-RD002"))
    result = run_check(mutated)
    assert rule_id in {v.rule.id for v in result.violations}, "\n".join(
        v.render() for v in result.violations
    )


def test_removing_replay_exemption_fails_the_run(repo_sources):
    contracts = []
    for contract in load_contracts():
        if contract.rule_id == "RD006":
            contract = dataclasses.replace(contract, exempt=())
        contracts.append(contract)
    result = run_check(repo_sources, contracts=contracts)
    rd006 = [v for v in result.violations if v.rule.id == "RD006"]
    assert rd006, "RD006 exemptions for manifest replay are load-bearing"
