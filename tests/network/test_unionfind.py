"""Tests for the union-find forest."""

from __future__ import annotations

import pytest

from repro.network.unionfind import UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(range(5))
        assert len(uf) == 5
        assert uf.num_components() == 5
        assert uf.largest_component_size() == 1

    def test_union_merges(self):
        uf = UnionFind()
        assert uf.union(1, 2) is True
        assert uf.connected(1, 2)
        assert uf.num_components() == 1

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert uf.union(2, 1) is False

    def test_transitive_connectivity(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")

    def test_component_sizes_exact(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert sorted(uf.component_sizes()) == [1, 2, 3]
        assert uf.component_size(0) == 3
        assert uf.component_size(4) == 2
        assert uf.largest_component_size() == 3

    def test_union_adds_unknown_items(self):
        uf = UnionFind()
        uf.union(10, 20)
        assert 10 in uf and 20 in uf

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            UnionFind().find(99)

    def test_connected_unknown_is_false(self):
        uf = UnionFind([1])
        assert not uf.connected(1, 2)
        assert not uf.connected(2, 3)

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add("x")
        uf.add("x")
        assert len(uf) == 1

    def test_empty_largest_component(self):
        assert UnionFind().largest_component_size() == 0

    def test_chain_of_unions(self):
        uf = UnionFind()
        for i in range(99):
            uf.union(i, i + 1)
        assert uf.num_components() == 1
        assert uf.largest_component_size() == 100
        assert uf.connected(0, 99)

    def test_two_clusters_then_bridge(self):
        uf = UnionFind()
        for i in range(4):
            uf.union(i, i + 1)        # 0-5 chain
        for i in range(10, 14):
            uf.union(i, i + 1)        # 10-14 chain
        assert uf.num_components() == 2
        uf.union(0, 10)
        assert uf.num_components() == 1
        assert uf.largest_component_size() == 10
