"""Tests for the UDP-like probe transport."""

from __future__ import annotations

import pytest

from repro.network.transport import (
    ProbeStatus,
    Transport,
    constant_latency,
)


class FakeEndpoint:
    """Scriptable endpoint for transport tests."""

    def __init__(self, alive=True, accept=True, response="pong"):
        self.alive = alive
        self.accept = accept
        self.response = response
        self.received = []

    def is_alive(self, time):
        return self.alive

    def receive_probe(self, message, time):
        self.received.append((message, time))
        return self.accept, self.response


class TestDirectory:
    def test_register_and_lookup(self):
        transport = Transport()
        endpoint = FakeEndpoint()
        transport.register(5, endpoint)
        assert transport.endpoint(5) is endpoint
        assert len(transport) == 1

    def test_double_register_rejected(self):
        transport = Transport()
        transport.register(5, FakeEndpoint())
        with pytest.raises(ValueError):
            transport.register(5, FakeEndpoint())

    def test_unregister_idempotent(self):
        transport = Transport()
        transport.register(5, FakeEndpoint())
        transport.unregister(5)
        transport.unregister(5)
        assert transport.endpoint(5) is None


class TestProbing:
    def test_delivered(self):
        transport = Transport()
        endpoint = FakeEndpoint(response="hello")
        transport.register(9, endpoint)
        outcome = transport.probe(1, 9, "msg", 10.0)
        assert outcome.status is ProbeStatus.DELIVERED
        assert outcome.delivered
        assert outcome.response == "hello"
        assert endpoint.received == [("msg", 10.0)]

    def test_unregistered_times_out(self):
        transport = Transport(timeout=0.2)
        outcome = transport.probe(1, 42, "msg", 0.0)
        assert outcome.status is ProbeStatus.TIMEOUT
        assert outcome.rtt == pytest.approx(0.2)
        assert not outcome.delivered

    def test_dead_endpoint_times_out(self):
        transport = Transport()
        endpoint = FakeEndpoint(alive=False)
        transport.register(9, endpoint)
        outcome = transport.probe(1, 9, "msg", 0.0)
        assert outcome.status is ProbeStatus.TIMEOUT
        assert endpoint.received == []  # dead peers never see the probe

    def test_refused(self):
        transport = Transport()
        transport.register(9, FakeEndpoint(accept=False, response="busy"))
        outcome = transport.probe(1, 9, "msg", 0.0)
        assert outcome.status is ProbeStatus.REFUSED
        assert outcome.response == "busy"

    def test_latency_model_applied(self):
        transport = Transport(latency=constant_latency(0.07))
        transport.register(9, FakeEndpoint())
        outcome = transport.probe(1, 9, "msg", 0.0)
        assert outcome.rtt == pytest.approx(0.07)

    def test_counters(self):
        transport = Transport()
        transport.register(9, FakeEndpoint())
        transport.probe(1, 9, "a", 0.0)
        transport.probe(1, 10, "b", 0.0)
        assert transport.probes_sent == 2
        assert transport.timeouts == 1

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            Transport(timeout=0.0)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            constant_latency(-0.1)
