"""Tests for the UDP-like probe transport."""

from __future__ import annotations

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.network.transport import (
    ProbeStatus,
    Transport,
    constant_latency,
)
from repro.sim.rng import RngRegistry


class FakeEndpoint:
    """Scriptable endpoint for transport tests."""

    def __init__(self, alive=True, accept=True, response="pong"):
        self.alive = alive
        self.accept = accept
        self.response = response
        self.received = []

    def is_alive(self, time):
        return self.alive

    def receive_probe(self, message, time):
        self.received.append((message, time))
        return self.accept, self.response


class TestDirectory:
    def test_register_and_lookup(self):
        transport = Transport()
        endpoint = FakeEndpoint()
        transport.register(5, endpoint)
        assert transport.endpoint(5) is endpoint
        assert len(transport) == 1

    def test_double_register_rejected(self):
        transport = Transport()
        transport.register(5, FakeEndpoint())
        with pytest.raises(ValueError):
            transport.register(5, FakeEndpoint())

    def test_unregister_idempotent(self):
        transport = Transport()
        transport.register(5, FakeEndpoint())
        transport.unregister(5)
        transport.unregister(5)
        assert transport.endpoint(5) is None


class TestProbing:
    def test_delivered(self):
        transport = Transport()
        endpoint = FakeEndpoint(response="hello")
        transport.register(9, endpoint)
        outcome = transport.probe(1, 9, "msg", 10.0)
        assert outcome.status is ProbeStatus.DELIVERED
        assert outcome.delivered
        assert outcome.response == "hello"
        assert endpoint.received == [("msg", 10.0)]

    def test_unregistered_times_out(self):
        transport = Transport(timeout=0.2)
        outcome = transport.probe(1, 42, "msg", 0.0)
        assert outcome.status is ProbeStatus.TIMEOUT
        assert outcome.rtt == pytest.approx(0.2)
        assert not outcome.delivered

    def test_dead_endpoint_times_out(self):
        transport = Transport()
        endpoint = FakeEndpoint(alive=False)
        transport.register(9, endpoint)
        outcome = transport.probe(1, 9, "msg", 0.0)
        assert outcome.status is ProbeStatus.TIMEOUT
        assert endpoint.received == []  # dead peers never see the probe

    def test_refused(self):
        transport = Transport()
        transport.register(9, FakeEndpoint(accept=False, response="busy"))
        outcome = transport.probe(1, 9, "msg", 0.0)
        assert outcome.status is ProbeStatus.REFUSED
        assert outcome.response == "busy"

    def test_latency_model_applied(self):
        transport = Transport(latency=constant_latency(0.07))
        transport.register(9, FakeEndpoint())
        outcome = transport.probe(1, 9, "msg", 0.0)
        assert outcome.rtt == pytest.approx(0.07)

    def test_counters(self):
        transport = Transport()
        transport.register(9, FakeEndpoint())
        transport.probe(1, 9, "a", 0.0)
        transport.probe(1, 10, "b", 0.0)
        assert transport.probes_sent == 2
        assert transport.timeouts == 1

    def test_refusals_counter(self):
        transport = Transport()
        transport.register(8, FakeEndpoint())
        transport.register(9, FakeEndpoint(accept=False, response="busy"))
        transport.probe(1, 9, "a", 0.0)
        transport.probe(1, 9, "b", 0.0)
        transport.probe(1, 8, "c", 0.0)
        assert transport.refusals == 2
        assert transport.timeouts == 0
        assert transport.probes_sent == 3

    def test_repr_surfaces_all_counters(self):
        transport = Transport()
        transport.register(9, FakeEndpoint(accept=False))
        transport.probe(1, 9, "a", 0.0)
        transport.probe(1, 42, "b", 0.0)
        text = repr(transport)
        assert "probes=2" in text
        assert "timeouts=1" in text
        assert "refusals=1" in text

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            Transport(timeout=0.0)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            constant_latency(-0.1)


class TestRttCharging:
    """The two deliberate RTT charging rules (see ProbeOutcome docstring).

    * A TIMEOUT is charged the **full timeout period** — the sender
      learns nothing until the whole window has elapsed.
    * A REFUSED probe is charged the **full delivery latency** — the
      refusal notice is a real reply from a live peer and travels the
      same round trip a pong would.
    """

    def test_timeout_charged_full_timeout_period(self):
        transport = Transport(timeout=0.35, latency=constant_latency(0.01))
        transport.register(9, FakeEndpoint(alive=False))
        dead = transport.probe(1, 9, "m", 0.0)
        unregistered = transport.probe(1, 77, "m", 0.0)
        assert dead.rtt == pytest.approx(0.35)
        assert unregistered.rtt == pytest.approx(0.35)

    def test_refusal_charged_full_delivery_latency(self):
        transport = Transport(timeout=0.35, latency=constant_latency(0.07))
        transport.register(9, FakeEndpoint(accept=False, response="busy"))
        refused = transport.probe(1, 9, "m", 0.0)
        assert refused.status is ProbeStatus.REFUSED
        assert refused.rtt == pytest.approx(0.07)

    def test_refusal_and_delivery_cost_the_same_wire_time(self):
        transport = Transport(latency=constant_latency(0.04))
        transport.register(8, FakeEndpoint())
        transport.register(9, FakeEndpoint(accept=False))
        assert transport.probe(1, 8, "m", 0.0).rtt == pytest.approx(
            transport.probe(1, 9, "m", 0.0).rtt
        )


class TestFaultInjection:
    def make_transport(self, plan, seed=5, **kwargs):
        injector = FaultInjector.from_plan(plan, RngRegistry(seed))
        return Transport(faults=injector, **kwargs)

    def test_certain_loss_spuriously_times_out_live_target(self):
        transport = self.make_transport(FaultPlan(loss_rate=1.0), timeout=0.2)
        endpoint = FakeEndpoint()
        transport.register(9, endpoint)
        outcome = transport.probe(1, 9, "m", 0.0)
        assert outcome.status is ProbeStatus.TIMEOUT
        assert outcome.spurious
        assert outcome.rtt == pytest.approx(0.2)  # full timeout charged
        assert endpoint.received == []  # the probe never arrived
        assert transport.spurious_timeouts == 1
        assert transport.timeouts == 1

    def test_dead_target_timeout_is_not_spurious(self):
        transport = self.make_transport(FaultPlan(loss_rate=1.0))
        transport.register(9, FakeEndpoint(alive=False))
        outcome = transport.probe(1, 9, "m", 0.0)
        assert outcome.status is ProbeStatus.TIMEOUT
        assert not outcome.spurious
        assert transport.spurious_timeouts == 0

    def test_dead_targets_consume_no_fault_randomness(self):
        """Fault streams are a pure function of the live-probe sequence."""
        plan = FaultPlan(loss_rate=0.5)
        with_corpses = self.make_transport(plan, seed=13)
        without = self.make_transport(plan, seed=13)
        for transport in (with_corpses, without):
            transport.register(9, FakeEndpoint())
        with_corpses.register(66, FakeEndpoint(alive=False))
        verdicts_a, verdicts_b = [], []
        for t in range(100):
            with_corpses.probe(1, 66, "corpse", float(t))  # dead interleaved
            verdicts_a.append(with_corpses.probe(1, 9, "m", float(t)).status)
            verdicts_b.append(without.probe(1, 9, "m", float(t)).status)
        assert verdicts_a == verdicts_b

    def test_jitter_reprices_delivered_rtt_only(self):
        transport = self.make_transport(
            FaultPlan(jitter=0.5), latency=constant_latency(0.05)
        )
        transport.register(9, FakeEndpoint())
        rtts = [transport.probe(1, 9, "m", float(t)).rtt for t in range(50)]
        assert all(0.05 <= rtt < 0.55 for rtt in rtts)
        assert len(set(rtts)) > 1
        assert transport.timeouts == 0  # jitter never drops probes

    def test_no_injector_keeps_spurious_false(self):
        transport = Transport()
        transport.register(9, FakeEndpoint())
        assert not transport.probe(1, 9, "m", 0.0).spurious
        assert transport.spurious_timeouts == 0
