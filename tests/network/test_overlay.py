"""Tests for conceptual-overlay extraction and connectivity."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.network.overlay import OverlaySnapshot, largest_component_size


class TestConstruction:
    def test_filters_dead_targets(self):
        snap = OverlaySnapshot.from_caches(
            live=[1, 2], cache_contents={1: [2, 99], 2: []}
        )
        assert snap.edges[1] == (2,)

    def test_dead_owner_rejected(self):
        with pytest.raises(TopologyError):
            OverlaySnapshot.from_caches(live=[1], cache_contents={9: [1]})

    def test_empty_network(self):
        snap = OverlaySnapshot.from_caches(live=[], cache_contents={})
        assert snap.largest_component_size() == 0
        assert snap.component_sizes() == []


class TestConnectivity:
    def test_fully_connected_chain(self):
        snap = OverlaySnapshot.from_caches(
            live=range(5),
            cache_contents={i: [i + 1] for i in range(4)},
        )
        assert snap.largest_component_size() == 5
        assert snap.num_components() == 1

    def test_two_components(self):
        snap = OverlaySnapshot.from_caches(
            live=range(6),
            cache_contents={0: [1], 1: [2], 3: [4]},
        )
        assert sorted(snap.component_sizes(), reverse=True) == [3, 2, 1]
        assert snap.largest_component_size() == 3
        assert snap.num_components() == 3

    def test_isolated_peers_are_singletons(self):
        snap = OverlaySnapshot.from_caches(
            live=[1, 2, 3], cache_contents={}
        )
        assert snap.largest_component_size() == 1
        assert snap.num_components() == 3

    def test_direction_ignored_for_components(self):
        # One-way pointer still joins the weak component.
        snap = OverlaySnapshot.from_caches(
            live=[1, 2], cache_contents={1: [2]}
        )
        assert snap.largest_component_size() == 2

    def test_convenience_wrapper(self):
        assert largest_component_size([1, 2], {1: [2]}) == 2


class TestDirectedViews:
    def test_reachable_follows_direction(self):
        snap = OverlaySnapshot.from_caches(
            live=[1, 2, 3],
            cache_contents={1: [2], 2: [3]},
        )
        assert snap.reachable_from(1) == {1, 2, 3}
        assert snap.reachable_from(3) == {3}

    def test_reachable_from_dead_rejected(self):
        snap = OverlaySnapshot.from_caches(live=[1], cache_contents={})
        with pytest.raises(TopologyError):
            snap.reachable_from(99)

    def test_out_degrees(self):
        snap = OverlaySnapshot.from_caches(
            live=[1, 2, 3],
            cache_contents={1: [2, 3], 2: [3]},
        )
        assert snap.out_degrees() == {1: 2, 2: 1, 3: 0}

    def test_mean_live_out_degree(self):
        snap = OverlaySnapshot.from_caches(
            live=[1, 2, 3],
            cache_contents={1: [2, 3], 2: [3]},
        )
        assert snap.mean_live_out_degree() == pytest.approx(1.0)

    def test_mean_out_degree_empty(self):
        snap = OverlaySnapshot.from_caches(live=[], cache_contents={})
        assert snap.mean_live_out_degree() == 0.0
