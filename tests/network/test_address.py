"""Tests for the address allocator."""

from __future__ import annotations

import pytest

from repro.network.address import AddressAllocator


class TestAddressAllocator:
    def test_sequential_allocation(self):
        alloc = AddressAllocator()
        assert [alloc.allocate() for _ in range(3)] == [0, 1, 2]

    def test_no_reuse(self):
        alloc = AddressAllocator()
        seen = {alloc.allocate() for _ in range(1000)}
        assert len(seen) == 1000

    def test_allocate_many(self):
        alloc = AddressAllocator()
        alloc.allocate()
        block = alloc.allocate_many(4)
        assert block == [1, 2, 3, 4]
        assert alloc.allocate() == 5

    def test_allocate_many_zero(self):
        alloc = AddressAllocator()
        assert alloc.allocate_many(0) == []

    def test_allocate_many_negative_rejected(self):
        with pytest.raises(ValueError):
            AddressAllocator().allocate_many(-1)

    def test_custom_start(self):
        alloc = AddressAllocator(start=100)
        assert alloc.allocate() == 100

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            AddressAllocator(start=-5)

    def test_contains(self):
        alloc = AddressAllocator()
        alloc.allocate_many(3)
        assert 2 in alloc
        assert 3 not in alloc

    def test_allocated_count(self):
        alloc = AddressAllocator()
        alloc.allocate_many(7)
        assert alloc.allocated == 7
        assert list(alloc.all_allocated()) == list(range(7))
