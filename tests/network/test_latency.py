"""Tests for the latency models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.network.latency import (
    lognormal_latency,
    pairwise_latency,
    uniform_latency,
)
from repro.network.transport import Transport


class TestUniformLatency:
    def test_in_bounds(self):
        model = uniform_latency(0.01, 0.2)
        for _ in range(200):
            assert 0.01 <= model(1, 2) <= 0.2

    def test_seed_reproducible(self):
        a = uniform_latency(0.0, 1.0, seed=5)
        b = uniform_latency(0.0, 1.0, seed=5)
        assert [a(1, 2) for _ in range(5)] == [b(1, 2) for _ in range(5)]

    def test_validation(self):
        with pytest.raises(ConfigError):
            uniform_latency(-0.1, 1.0)
        with pytest.raises(ConfigError):
            uniform_latency(1.0, 0.5)


class TestLognormalLatency:
    def test_positive(self):
        model = lognormal_latency(0.05)
        assert all(model(1, 2) > 0 for _ in range(200))

    def test_cap_respected(self):
        model = lognormal_latency(0.05, sigma=2.0, cap=0.5)
        assert all(model(1, 2) <= 0.5 for _ in range(500))

    def test_median_roughly_respected(self):
        model = lognormal_latency(0.05, sigma=0.5)
        draws = sorted(model(1, 2) for _ in range(4000))
        assert draws[2000] == pytest.approx(0.05, rel=0.2)

    def test_validation(self):
        with pytest.raises(ConfigError):
            lognormal_latency(0.0)
        with pytest.raises(ConfigError):
            lognormal_latency(0.05, sigma=0.0)
        with pytest.raises(ConfigError):
            lognormal_latency(0.05, cap=0.01)


class TestPairwiseLatency:
    def test_deterministic_per_pair(self):
        model = pairwise_latency(0.01, 0.3)
        assert model(1, 2) == model(1, 2)

    def test_symmetric(self):
        model = pairwise_latency(0.01, 0.3)
        assert model(1, 2) == model(2, 1)

    def test_pairs_differ(self):
        model = pairwise_latency(0.0, 1.0)
        values = {model(1, other) for other in range(2, 30)}
        assert len(values) > 20

    def test_in_bounds(self):
        model = pairwise_latency(0.05, 0.25)
        for other in range(2, 100):
            assert 0.05 <= model(1, other) <= 0.25

    def test_validation(self):
        with pytest.raises(ConfigError):
            pairwise_latency(0.5, 0.1)


class TestTransportIntegration:
    def test_transport_accepts_custom_model(self):
        class Echo:
            def is_alive(self, t):
                return True

            def receive_probe(self, message, t):
                return True, "ok"

        transport = Transport(latency=pairwise_latency(0.07, 0.07))
        transport.register(9, Echo())
        outcome = transport.probe(1, 9, "x", 0.0)
        assert outcome.rtt == pytest.approx(0.07)
