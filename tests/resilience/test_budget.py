"""Tests for retry-token budgets: exhaustion, refill, monotonicity."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.resilience.budget import BudgetSpec, RetryBudget


class TestBudgetSpec:
    def test_validates_capacity(self):
        with pytest.raises(ScenarioError):
            BudgetSpec(capacity=0)

    def test_validates_refill_interval(self):
        with pytest.raises(ScenarioError):
            BudgetSpec(refill_interval=0.0)


class TestRetryBudget:
    def test_starts_full(self):
        budget = RetryBudget(BudgetSpec(capacity=5, refill_interval=10.0))
        assert budget.tokens(0.0) == 5.0

    def test_exhaustion_denies(self):
        budget = RetryBudget(BudgetSpec(capacity=3, refill_interval=10.0))
        assert all(budget.try_spend(0.0) for _ in range(3))
        assert not budget.try_spend(0.0)
        assert budget.denied == 1

    def test_refill_restores_spending(self):
        budget = RetryBudget(BudgetSpec(capacity=2, refill_interval=10.0))
        budget.try_spend(0.0)
        budget.try_spend(0.0)
        assert not budget.try_spend(0.0)
        # One full interval mints exactly one token.
        assert budget.try_spend(10.0)
        assert not budget.try_spend(10.0)

    def test_fractional_refill_needs_whole_token(self):
        budget = RetryBudget(BudgetSpec(capacity=2, refill_interval=10.0))
        budget.try_spend(0.0)
        budget.try_spend(0.0)
        assert not budget.try_spend(5.0)  # only half a token banked
        assert budget.tokens(5.0) == pytest.approx(0.5)

    def test_refill_caps_at_capacity(self):
        budget = RetryBudget(BudgetSpec(capacity=2, refill_interval=1.0))
        assert budget.tokens(1000.0) == 2.0

    def test_out_of_order_consults_are_monotone(self):
        # Retries land at now + accumulated delay while the next query
        # may consult earlier; time must never run backwards.
        budget = RetryBudget(BudgetSpec(capacity=2, refill_interval=10.0))
        budget.try_spend(50.0)
        budget.try_spend(50.0)
        assert budget.tokens(40.0) == 0.0  # stale clock: no un-refill
        assert budget.try_spend(60.0)

    def test_denied_counter_accumulates(self):
        budget = RetryBudget(BudgetSpec(capacity=1, refill_interval=100.0))
        budget.try_spend(0.0)
        for _ in range(4):
            budget.try_spend(0.0)
        assert budget.denied == 4
