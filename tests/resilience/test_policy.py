"""Tests for the resilience policy bundle and its normalize gate."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ScenarioError
from repro.resilience.policy import (
    BreakerSpec,
    BudgetSpec,
    ResiliencePolicy,
    SheddingSpec,
)


class TestSheddingSpec:
    def test_validates_fraction(self):
        with pytest.raises(ScenarioError):
            SheddingSpec(soft_fraction=0.0)
        with pytest.raises(ScenarioError):
            SheddingSpec(soft_fraction=1.5)

    def test_unit_fraction_is_disabled(self):
        assert not SheddingSpec(soft_fraction=1.0).enabled
        assert SheddingSpec(soft_fraction=0.5).enabled


class TestResiliencePolicy:
    def test_default_is_noop(self):
        assert ResiliencePolicy().is_noop()

    def test_disabled_shedding_stays_noop(self):
        assert ResiliencePolicy(
            shedding=SheddingSpec(soft_fraction=1.0)
        ).is_noop()

    def test_any_mechanism_breaks_noop(self):
        assert not ResiliencePolicy(breaker=BreakerSpec()).is_noop()
        assert not ResiliencePolicy(budget=BudgetSpec()).is_noop()
        assert not ResiliencePolicy(shedding=SheddingSpec()).is_noop()

    def test_all_on_arms_everything(self):
        policy = ResiliencePolicy.all_on()
        assert policy.breaker is not None
        assert policy.budget is not None
        assert policy.shedding is not None and policy.shedding.enabled

    def test_normalize_collapses_noop(self):
        assert ResiliencePolicy.normalize(None) is None
        assert ResiliencePolicy.normalize(ResiliencePolicy()) is None
        armed = ResiliencePolicy.all_on()
        assert ResiliencePolicy.normalize(armed) is armed

    def test_picklable(self):
        policy = ResiliencePolicy.all_on()
        assert pickle.loads(pickle.dumps(policy)) == policy

    def test_with_returns_modified_copy(self):
        policy = ResiliencePolicy()
        armed = policy.with_(breaker=BreakerSpec(failure_threshold=5))
        assert policy.is_noop() and not armed.is_noop()
