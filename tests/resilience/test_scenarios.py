"""Tests for scenario plans and the scenario driver."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ScenarioError
from repro.resilience.scenarios import (
    ChurnStorm,
    FlashCrowd,
    ScenarioDriver,
    ScenarioPlan,
)
from repro.sim.rng import RngRegistry


class TestChurnStorm:
    def test_validates_start(self):
        with pytest.raises(ScenarioError):
            ChurnStorm(start=-1.0, width=10.0, fraction=0.5)

    def test_validates_width(self):
        with pytest.raises(ScenarioError):
            ChurnStorm(start=0.0, width=0.0, fraction=0.5)

    def test_validates_fraction(self):
        with pytest.raises(ScenarioError):
            ChurnStorm(start=0.0, width=10.0, fraction=1.5)
        with pytest.raises(ScenarioError):
            ChurnStorm(start=0.0, width=10.0, fraction=-0.1)

    def test_zero_fraction_is_disabled(self):
        assert not ChurnStorm(start=0.0, width=10.0, fraction=0.0).enabled
        assert ChurnStorm(start=0.0, width=10.0, fraction=0.3).enabled


class TestFlashCrowd:
    def test_validates_window(self):
        with pytest.raises(ScenarioError):
            FlashCrowd(start=10.0, end=10.0, multiplier=2.0)
        with pytest.raises(ScenarioError):
            FlashCrowd(start=-1.0, end=10.0, multiplier=2.0)

    def test_validates_multiplier(self):
        with pytest.raises(ScenarioError):
            FlashCrowd(start=0.0, end=10.0, multiplier=0.0)

    def test_unit_multiplier_is_disabled(self):
        assert not FlashCrowd(start=0.0, end=10.0, multiplier=1.0).enabled
        assert FlashCrowd(start=0.0, end=10.0, multiplier=0.5).enabled


class TestScenarioPlan:
    def test_default_is_noop(self):
        assert ScenarioPlan().is_noop()

    def test_disabled_components_stay_noop(self):
        plan = ScenarioPlan(
            storms=(ChurnStorm(start=0.0, width=5.0, fraction=0.0),),
            crowds=(FlashCrowd(start=0.0, end=5.0, multiplier=1.0),),
        )
        assert plan.is_noop()

    def test_enabled_storm_is_not_noop(self):
        plan = ScenarioPlan(
            storms=(ChurnStorm(start=0.0, width=5.0, fraction=0.2),)
        )
        assert not plan.is_noop()

    def test_rejects_list_fields(self):
        with pytest.raises(ScenarioError):
            ScenarioPlan(storms=[ChurnStorm(0.0, 5.0, 0.2)])
        with pytest.raises(ScenarioError):
            ScenarioPlan(crowds=[FlashCrowd(0.0, 5.0, 2.0)])

    def test_rejects_overlapping_enabled_crowds(self):
        with pytest.raises(ScenarioError):
            ScenarioPlan(
                crowds=(
                    FlashCrowd(start=0.0, end=10.0, multiplier=2.0),
                    FlashCrowd(start=5.0, end=15.0, multiplier=3.0),
                )
            )

    def test_disabled_crowds_may_overlap(self):
        ScenarioPlan(
            crowds=(
                FlashCrowd(start=0.0, end=10.0, multiplier=1.0),
                FlashCrowd(start=5.0, end=15.0, multiplier=2.0),
            )
        )

    def test_abutting_crowds_allowed(self):
        ScenarioPlan(
            crowds=(
                FlashCrowd(start=0.0, end=10.0, multiplier=2.0),
                FlashCrowd(start=10.0, end=20.0, multiplier=3.0),
            )
        )

    def test_hashable_and_picklable(self):
        plan = ScenarioPlan(
            storms=(ChurnStorm(start=10.0, width=5.0, fraction=0.4),),
            crowds=(FlashCrowd(start=10.0, end=40.0, multiplier=3.0),),
        )
        assert hash(plan) == hash(
            pickle.loads(pickle.dumps(plan))
        )
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_with_returns_modified_copy(self):
        plan = ScenarioPlan()
        stormy = plan.with_(
            storms=(ChurnStorm(start=0.0, width=5.0, fraction=0.2),)
        )
        assert plan.is_noop() and not stormy.is_noop()


class TestScenarioDriver:
    def test_from_plan_gates_none_and_noop(self):
        rng = RngRegistry(7)
        assert ScenarioDriver.from_plan(None, rng) is None
        assert ScenarioDriver.from_plan(ScenarioPlan(), rng) is None

    def test_from_plan_builds_for_enabled(self):
        plan = ScenarioPlan(
            storms=(ChurnStorm(start=0.0, width=5.0, fraction=0.2),)
        )
        assert ScenarioDriver.from_plan(plan, RngRegistry(7)) is not None

    def test_draw_departures_count_and_range(self):
        storm = ChurnStorm(start=100.0, width=20.0, fraction=0.5)
        driver = ScenarioDriver(
            ScenarioPlan(storms=(storm,)), RngRegistry(7)
        )
        departures = driver.draw_departures(storm, 40)
        assert len(departures) == 20
        indexes = [index for index, _ in departures]
        assert len(set(indexes)) == len(indexes)
        assert all(0 <= index < 40 for index in indexes)
        assert all(0.0 <= offset < storm.width for _, offset in departures)

    def test_draw_departures_deterministic(self):
        storm = ChurnStorm(start=100.0, width=20.0, fraction=0.3)
        plan = ScenarioPlan(storms=(storm,))
        first = ScenarioDriver(plan, RngRegistry(11)).draw_departures(
            storm, 50
        )
        second = ScenarioDriver(plan, RngRegistry(11)).draw_departures(
            storm, 50
        )
        assert first == second

    def test_draw_departures_empty_roster(self):
        storm = ChurnStorm(start=0.0, width=5.0, fraction=0.5)
        driver = ScenarioDriver(
            ScenarioPlan(storms=(storm,)), RngRegistry(7)
        )
        assert driver.draw_departures(storm, 0) == []

    def test_draws_only_touch_the_scenario_stream(self):
        # Protocol streams must be bit-identical whether or not the
        # driver drew anything — the substream contract, dynamically.
        storm = ChurnStorm(start=0.0, width=5.0, fraction=0.5)
        plan = ScenarioPlan(storms=(storm,))
        quiet = RngRegistry(13)
        busy = RngRegistry(13)
        ScenarioDriver(plan, busy).draw_departures(storm, 30)
        assert (
            quiet.stream("lifetimes").random()
            == busy.stream("lifetimes").random()
        )


class TestWarpDelay:
    def _driver(self, *crowds):
        return ScenarioDriver(
            ScenarioPlan(crowds=tuple(crowds)), RngRegistry(7)
        )

    def test_no_crowds_is_identity(self):
        storm = ChurnStorm(start=0.0, width=5.0, fraction=0.5)
        driver = ScenarioDriver(
            ScenarioPlan(storms=(storm,)), RngRegistry(7)
        )
        assert driver.warp_delay(10.0, 3.25) == 3.25

    def test_infinite_delay_passes_through(self):
        driver = self._driver(FlashCrowd(0.0, 10.0, 4.0))
        assert driver.warp_delay(0.0, float("inf")) == float("inf")

    def test_inside_window_divides_by_multiplier(self):
        driver = self._driver(FlashCrowd(100.0, 200.0, 4.0))
        assert driver.warp_delay(100.0, 8.0) == pytest.approx(2.0)

    def test_before_window_short_delay_unchanged(self):
        driver = self._driver(FlashCrowd(100.0, 200.0, 4.0))
        assert driver.warp_delay(0.0, 50.0) == 50.0

    def test_delay_crossing_into_window_compresses_tail(self):
        # 10s of load: 5 spent in the gap at intensity 1, the remaining
        # 5 inside the crowd at intensity 4 -> 5 + 5/4 wall seconds.
        driver = self._driver(FlashCrowd(100.0, 200.0, 4.0))
        assert driver.warp_delay(95.0, 10.0) == pytest.approx(6.25)

    def test_delay_crossing_out_of_window(self):
        # Window holds 2s * x4 = 8 load; 10 load total -> 2s inside
        # plus 2 remaining load at baseline after the window.
        driver = self._driver(FlashCrowd(100.0, 102.0, 4.0))
        assert driver.warp_delay(100.0, 10.0) == pytest.approx(4.0)

    def test_drought_stretches_delay(self):
        driver = self._driver(FlashCrowd(100.0, 1000.0, 0.5))
        assert driver.warp_delay(100.0, 4.0) == pytest.approx(8.0)

    def test_consumes_no_rng(self):
        crowd = FlashCrowd(0.0, 100.0, 3.0)
        rng = RngRegistry(17)
        driver = ScenarioDriver(ScenarioPlan(crowds=(crowd,)), rng)
        before = RngRegistry(17).stream("scenario:churn").random()
        driver.warp_delay(0.0, 5.0)
        assert rng.stream("scenario:churn").random() == before
