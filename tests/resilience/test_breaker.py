"""Tests for circuit breakers, including exact cool-down boundaries."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    BreakerSpec,
    CircuitBreaker,
)


class TestBreakerSpec:
    def test_validates_threshold(self):
        with pytest.raises(ScenarioError):
            BreakerSpec(failure_threshold=0)

    def test_validates_cooldown(self):
        with pytest.raises(ScenarioError):
            BreakerSpec(cooldown=0.0)


class TestCircuitBreaker:
    def _tripped(self, spec=None, now=100.0):
        breaker = CircuitBreaker(spec or BreakerSpec(failure_threshold=3))
        for _ in range(3):
            breaker.record_refusal(now)
        return breaker

    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker(BreakerSpec())
        assert breaker.state == CLOSED
        assert breaker.allow(0.0)

    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(BreakerSpec(failure_threshold=3))
        breaker.record_refusal(10.0)
        breaker.record_refusal(11.0)
        assert breaker.state == CLOSED
        breaker.record_refusal(12.0)
        assert breaker.state == OPEN
        assert breaker.open_until == 12.0 + BreakerSpec().cooldown

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(BreakerSpec(failure_threshold=3))
        breaker.record_refusal(10.0)
        breaker.record_refusal(11.0)
        breaker.record_success()
        breaker.record_refusal(12.0)
        breaker.record_refusal(13.0)
        assert breaker.state == CLOSED

    def test_open_suppresses_before_boundary(self):
        breaker = self._tripped(
            BreakerSpec(failure_threshold=3, cooldown=30.0), now=100.0
        )
        assert not breaker.allow(129.999)
        assert breaker.state == OPEN

    def test_half_open_exactly_at_boundary(self):
        # now >= open_until is inclusive: the trial probe goes out at
        # the exact cool-down expiry instant.
        breaker = self._tripped(
            BreakerSpec(failure_threshold=3, cooldown=30.0), now=100.0
        )
        assert breaker.allow(130.0)
        assert breaker.state == HALF_OPEN

    def test_half_open_success_closes(self):
        breaker = self._tripped()
        breaker.allow(130.0)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failures == 0

    def test_half_open_refusal_reopens_with_fresh_cooldown(self):
        breaker = self._tripped(
            BreakerSpec(failure_threshold=3, cooldown=30.0), now=100.0
        )
        breaker.allow(130.0)
        breaker.record_refusal(130.0)
        assert breaker.state == OPEN
        assert breaker.open_until == 160.0
        assert not breaker.allow(159.999)
        assert breaker.allow(160.0)


class TestBreakerBoard:
    def test_unknown_address_allowed(self):
        board = BreakerBoard(BreakerSpec())
        assert board.allow(42, 0.0)
        assert board.state_of(42) == CLOSED
        assert len(board) == 0

    def test_refusals_create_and_trip(self):
        board = BreakerBoard(BreakerSpec(failure_threshold=2, cooldown=10.0))
        board.record_refusal(42, 5.0)
        assert len(board) == 1
        assert board.allow(42, 5.0)
        board.record_refusal(42, 6.0)
        assert board.state_of(42) == OPEN
        assert not board.allow(42, 10.0)
        assert board.allow(42, 16.0)

    def test_success_only_touches_existing(self):
        board = BreakerBoard(BreakerSpec())
        board.record_success(42)
        assert len(board) == 0

    def test_discard_forgets_state(self):
        board = BreakerBoard(BreakerSpec(failure_threshold=1, cooldown=10.0))
        board.record_refusal(42, 5.0)
        assert not board.allow(42, 6.0)
        board.discard(42)
        assert board.allow(42, 6.0)
        assert len(board) == 0

    def test_addresses_independent(self):
        board = BreakerBoard(BreakerSpec(failure_threshold=1, cooldown=10.0))
        board.record_refusal(1, 5.0)
        assert not board.allow(1, 6.0)
        assert board.allow(2, 6.0)
