"""Tests for the windowed time-to-recovery reduction."""

from __future__ import annotations

import pytest

from repro.resilience.recovery import (
    SatisfactionWindow,
    baseline_rate,
    time_to_recovery,
    to_windows,
)


def _w(start, end, queries, satisfied):
    return SatisfactionWindow(start, end, queries, satisfied)


class TestSatisfactionWindow:
    def test_rate(self):
        assert _w(0, 25, 10, 8).rate == pytest.approx(0.8)

    def test_idle_window_rate_zero(self):
        assert _w(0, 25, 0, 0).rate == 0.0


class TestBaselineRate:
    def test_pools_counts_not_rates(self):
        windows = [_w(0, 25, 90, 90), _w(25, 50, 10, 0)]
        # Pooled: 90/100, not mean(1.0, 0.0) = 0.5.
        assert baseline_rate(windows, before=50.0) == pytest.approx(0.9)

    def test_excludes_windows_past_cutoff(self):
        windows = [_w(0, 25, 10, 10), _w(25, 50, 10, 0)]
        assert baseline_rate(windows, before=25.0) == 1.0

    def test_no_qualifying_windows(self):
        assert baseline_rate([], before=100.0) == 0.0
        assert baseline_rate([_w(0, 25, 0, 0)], before=100.0) == 0.0


class TestTimeToRecovery:
    WINDOWS = [
        _w(0, 25, 20, 18),     # baseline
        _w(25, 50, 20, 4),     # storm dip
        _w(50, 75, 20, 10),    # partial recovery
        _w(75, 100, 20, 18),   # recovered
    ]

    def test_first_recovered_window_counts(self):
        assert time_to_recovery(
            self.WINDOWS, after=25.0, baseline=0.9
        ) == pytest.approx(75.0)

    def test_threshold_scales_target(self):
        assert time_to_recovery(
            self.WINDOWS, after=25.0, baseline=0.9, threshold=0.5
        ) == pytest.approx(50.0)

    def test_unrecovered_is_inf(self):
        windows = [_w(0, 25, 20, 18), _w(25, 50, 20, 2)]
        assert time_to_recovery(
            windows, after=25.0, baseline=0.9
        ) == float("inf")

    def test_zero_baseline_is_inf(self):
        assert time_to_recovery(
            self.WINDOWS, after=25.0, baseline=0.0
        ) == float("inf")

    def test_min_queries_skips_sparse_windows(self):
        windows = [
            _w(0, 25, 20, 18),
            _w(25, 50, 1, 1),     # sparse fluke at rate 1.0
            _w(50, 75, 20, 18),
        ]
        assert time_to_recovery(
            windows, after=25.0, baseline=0.9, min_queries=5
        ) == pytest.approx(50.0)

    def test_windows_ending_at_after_excluded(self):
        windows = [_w(0, 25, 20, 18), _w(25, 50, 20, 18)]
        assert time_to_recovery(
            windows, after=25.0, baseline=0.9
        ) == pytest.approx(25.0)


class TestToWindows:
    def test_adapts_plain_rows(self):
        rows = ((0.0, 25.0, 10, 8), (25.0, 50.0, 5, 5))
        windows = to_windows(rows)
        assert windows[0].rate == pytest.approx(0.8)
        assert windows[1] == _w(25.0, 50.0, 5, 5)
