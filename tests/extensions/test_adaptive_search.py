"""Tests for adaptive k-parallel probing."""

from __future__ import annotations

import random

import pytest

from repro.core.params import ProtocolParams
from repro.errors import ConfigError
from repro.extensions.adaptive_search import execute_adaptive_query
from repro.network.transport import Transport
from tests.conftest import make_entry
from tests.core.helpers import make_peer


@pytest.fixture
def rng():
    return random.Random(77)


def build_network(num_misses, owner_files=None, protocol=None):
    """A querier caching ``num_misses`` fruitless peers (+ optional owner)."""
    protocol = protocol or ProtocolParams(
        cache_size=200, query_probe="MFS", probe_spacing=0.2
    )
    querier = make_peer(0, protocol=protocol, library=frozenset())
    transport = Transport()
    transport.register(0, querier)
    peers = []
    for i in range(1, num_misses + 1):
        peer = make_peer(
            i, protocol=protocol, library=frozenset(), num_files=1000 - i
        )
        transport.register(i, peer)
        peers.append(peer)
    if owner_files is not None:
        owner = make_peer(
            999, protocol=protocol, library=frozenset({42}),
            num_files=owner_files,
        )
        transport.register(999, owner)
        peers.append(owner)
    for peer in peers:
        querier.link_cache.insert(
            make_entry(peer.address, num_files=peer.num_files),
            querier.policies.replacement, 0.0, querier._policy_rng,
        )
    return querier, transport


class TestEscalation:
    def test_rare_item_escalates_and_finishes_faster(self, rng):
        """Owner ranked last under MFS: adaptive beats serial duration."""
        querier, transport = build_network(60, owner_files=1)
        adaptive = execute_adaptive_query(
            querier, 42, transport, 0.0, rng=rng,
            initial_walkers=1, escalation_period=3, max_walkers=16,
        )
        assert adaptive.satisfied
        # Serial would need 61 waves (12.2s); escalation compresses that.
        assert adaptive.duration < 61 * 0.2

    def test_popular_item_stays_serial(self, rng):
        """A first-probe hit must cost exactly one probe, like the spec."""
        querier, transport = build_network(0, owner_files=10_000)
        result = execute_adaptive_query(
            querier, 42, transport, 0.0, rng=rng,
            initial_walkers=1, escalation_period=3,
        )
        assert result.satisfied
        assert result.probes == 1

    def test_max_walkers_bounds_overshoot(self, rng):
        querier, transport = build_network(100)  # nobody owns the file
        result = execute_adaptive_query(
            querier, 42, transport, 0.0, rng=rng,
            initial_walkers=1, escalation_period=1, max_walkers=4,
        )
        assert not result.satisfied
        assert result.probes == 100  # everything probed exactly once

    def test_unsatisfied_reports_pool_exhaustion(self, rng):
        querier, transport = build_network(10)
        result = execute_adaptive_query(querier, 42, transport, 0.0, rng=rng)
        assert not result.satisfied
        assert result.pool_exhausted

    def test_dry_run_resets_on_success(self, rng):
        """desired_results=2 with two owners: escalation counter resets."""
        protocol = ProtocolParams(cache_size=200, probe_spacing=0.2)
        querier = make_peer(0, protocol=protocol, library=frozenset())
        transport = Transport()
        transport.register(0, querier)
        for i in range(1, 30):
            library = frozenset({42}) if i in (5, 25) else frozenset()
            peer = make_peer(i, protocol=protocol, library=library)
            transport.register(i, peer)
            querier.link_cache.insert(
                make_entry(i), querier.policies.replacement,
                0.0, querier._policy_rng,
            )
        result = execute_adaptive_query(
            querier, 42, transport, 0.0, rng=rng,
            desired_results=2, escalation_period=2, max_walkers=8,
        )
        assert result.satisfied
        assert result.results == 2


class TestValidation:
    def test_rejects_bad_params(self, rng):
        querier, transport = build_network(1)
        with pytest.raises(ConfigError):
            execute_adaptive_query(
                querier, 42, transport, 0.0, rng=rng, initial_walkers=0
            )
        with pytest.raises(ConfigError):
            execute_adaptive_query(
                querier, 42, transport, 0.0, rng=rng,
                initial_walkers=4, max_walkers=2,
            )
        with pytest.raises(ConfigError):
            execute_adaptive_query(
                querier, 42, transport, 0.0, rng=rng, escalation_period=0
            )
