"""Tests for the selfish-peer model and probe payments."""

from __future__ import annotations

import random

import pytest

from repro.core.params import ProtocolParams
from repro.core.search import execute_query
from repro.errors import ConfigError
from repro.extensions.selfish import ProbeBudget, execute_selfish_query
from repro.network.transport import Transport
from tests.conftest import make_entry
from tests.core.helpers import make_peer


@pytest.fixture
def rng():
    return random.Random(55)


def build_network(num_peers, owner_index=None):
    protocol = ProtocolParams(cache_size=200, probe_spacing=0.2)
    querier = make_peer(0, protocol=protocol, library=frozenset())
    transport = Transport()
    transport.register(0, querier)
    for i in range(1, num_peers + 1):
        library = frozenset({42}) if i == owner_index else frozenset()
        peer = make_peer(i, protocol=protocol, library=library)
        transport.register(i, peer)
        querier.link_cache.insert(
            make_entry(i), querier.policies.replacement,
            0.0, querier._policy_rng,
        )
    return querier, transport


class TestProbeBudget:
    def test_starts_full(self):
        assert ProbeBudget(refill_rate=1.0, capacity=10).available(0.0) == 10

    def test_spend_and_refill(self):
        budget = ProbeBudget(refill_rate=2.0, capacity=10)
        budget.spend(0.0, 10)
        assert budget.available(0.0) == 0
        assert budget.available(3.0) == 6

    def test_refill_caps_at_capacity(self):
        budget = ProbeBudget(refill_rate=100.0, capacity=10)
        budget.spend(0.0, 5)
        assert budget.available(100.0) == 10

    def test_overdraft_clamps_to_zero(self):
        budget = ProbeBudget(refill_rate=1.0, capacity=10)
        budget.spend(0.0, 50)
        assert budget.available(0.0) == 0

    def test_custom_initial(self):
        assert ProbeBudget(1.0, 10, initial=3).available(0.0) == 3

    def test_validation(self):
        with pytest.raises(ConfigError):
            ProbeBudget(refill_rate=-1.0, capacity=10)
        with pytest.raises(ConfigError):
            ProbeBudget(refill_rate=1.0, capacity=0)
        with pytest.raises(ConfigError):
            ProbeBudget(refill_rate=1.0, capacity=10, initial=20)
        budget = ProbeBudget(1.0, 10)
        with pytest.raises(ConfigError):
            budget.spend(0.0, -1)


class TestSelfishQuery:
    def test_blasts_everything_in_near_zero_time(self, rng):
        querier, transport = build_network(50)  # no owner: full blast
        result = execute_selfish_query(querier, 42, transport, 0.0, rng=rng)
        assert result.probes == 50
        # One massive wave: the selfish peer waits a single spacing.
        assert result.duration <= 0.2 + 1e-9

    def test_imposes_more_load_than_protocol(self, rng):
        """Same network, same (rare-ish) query: selfish costs more probes."""
        querier_a, transport_a = build_network(50, owner_index=40)
        honest = execute_query(querier_a, 42, transport_a, 0.0, rng=random.Random(1))
        querier_b, transport_b = build_network(50, owner_index=40)
        selfish = execute_selfish_query(
            querier_b, 42, transport_b, 0.0, rng=random.Random(1)
        )
        assert selfish.satisfied
        assert selfish.probes >= honest.probes
        assert selfish.duration <= honest.duration

    def test_budget_caps_probe_count(self, rng):
        querier, transport = build_network(50)
        budget = ProbeBudget(refill_rate=0.1, capacity=10)
        result = execute_selfish_query(
            querier, 42, transport, 0.0, rng=rng, budget=budget
        )
        assert result.probes <= 10
        assert budget.available(0.0) == 0

    def test_broke_peer_cannot_probe(self, rng):
        querier, transport = build_network(10)
        budget = ProbeBudget(refill_rate=0.1, capacity=10, initial=0)
        result = execute_selfish_query(
            querier, 42, transport, 0.0, rng=rng, budget=budget
        )
        assert result.probes == 0
        assert not result.satisfied

    def test_budget_refills_between_queries(self, rng):
        querier, transport = build_network(30)
        budget = ProbeBudget(refill_rate=1.0, capacity=20)
        first = execute_selfish_query(
            querier, 42, transport, 0.0, rng=rng, budget=budget
        )
        assert first.probes == 20
        later = execute_selfish_query(
            querier, 42, transport, 10.0, rng=rng, budget=budget
        )
        assert later.probes == 10  # the 10 credits refilled by t=10

    def test_protocol_restored_after_query(self, rng):
        querier, transport = build_network(5)
        original = querier.protocol
        execute_selfish_query(querier, 42, transport, 0.0, rng=rng)
        assert querier.protocol is original
