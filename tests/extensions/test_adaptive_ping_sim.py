"""Tests for the adaptive-maintenance simulation."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams, SystemParams
from repro.extensions.adaptive_ping import AdaptivePingController
from repro.extensions.adaptive_ping_sim import AdaptiveMaintenanceSimulation


def build(multiplier, base_interval, seed=14, window=4, **factory_kwargs):
    # A small window so that even short-lived peers (heavy-churn runs
    # shorten the pingers' own sessions too) adapt within their lifetime.
    def factory(initial):
        return AdaptivePingController(
            initial, min_interval=2.0, max_interval=600.0,
            window=window, **factory_kwargs,
        )

    return AdaptiveMaintenanceSimulation(
        SystemParams(
            network_size=60, query_rate=0.0, lifespan_multiplier=multiplier
        ),
        ProtocolParams(cache_size=10, ping_interval=base_interval),
        seed=seed,
        health_sample_interval=None,
        controller_factory=factory,
    )


class TestWiring:
    def test_every_good_peer_gets_a_controller(self):
        sim = build(multiplier=1.0, base_interval=30.0)
        for peer in sim.live_good_peers:
            assert sim.controller_for(peer.address) is not None

    def test_controllers_start_at_protocol_interval(self):
        sim = build(multiplier=1.0, base_interval=45.0)
        assert sim.mean_ping_interval() == pytest.approx(45.0)

    def test_newborns_get_controllers(self):
        sim = build(multiplier=0.05, base_interval=30.0)
        sim.run(1200.0)
        newborns = [p for p in sim.live_good_peers if p.birth_time > 0]
        assert newborns
        assert all(
            sim.controller_for(p.address) is not None for p in newborns
        )

    def test_dead_peers_controllers_removed(self):
        sim = build(multiplier=0.05, base_interval=30.0)
        sim.run(1200.0)
        live = {p.address for p in sim.live_peers}
        assert set(sim._controllers.keys()) <= live


class TestAdaptation:
    def test_heavy_churn_tightens_intervals(self):
        sim = build(multiplier=0.1, base_interval=60.0)
        sim.run(3600.0)
        # Dead probes abound, so the fleet average falls below base.
        assert sim.mean_ping_interval() < 60.0

    def test_calm_network_relaxes_intervals(self):
        sim = build(multiplier=50.0, base_interval=10.0)
        sim.run(2400.0)
        # Essentially no churn: every ping lives, controllers relax.
        assert sim.mean_ping_interval() > 10.0

    def test_adaptation_no_worse_than_fixed_interval_under_churn(self):
        """Same terrible base interval under churn: the adaptive fleet's
        overlay must be at least as connected as the fixed fleet's."""
        from repro.core.network_sim import GuessSimulation

        adaptive = build(multiplier=0.1, base_interval=240.0)
        adaptive.run(2400.0)
        fixed = GuessSimulation(
            SystemParams(
                network_size=60, query_rate=0.0, lifespan_multiplier=0.1
            ),
            ProtocolParams(cache_size=10, ping_interval=240.0),
            seed=14,
            health_sample_interval=None,
        )
        fixed.run(2400.0)
        adaptive_lcc = adaptive.snapshot_overlay().largest_component_size()
        fixed_lcc = fixed.snapshot_overlay().largest_component_size()
        assert adaptive_lcc >= fixed_lcc
