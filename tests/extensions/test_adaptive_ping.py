"""Tests for the adaptive PingInterval controller."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.extensions.adaptive_ping import AdaptivePingController


def feed(controller, dead_count, live_count):
    for _ in range(dead_count):
        controller.observe(dead=True)
    for _ in range(live_count):
        controller.observe(dead=False)


class TestAdjustment:
    def test_tightens_on_dead_probes(self):
        controller = AdaptivePingController(60.0, window=10)
        feed(controller, dead_count=5, live_count=5)  # 50% live < 80% target
        assert controller.interval == pytest.approx(30.0)
        assert controller.adjustments == 1

    def test_relaxes_when_everything_lives(self):
        controller = AdaptivePingController(60.0, window=10)
        feed(controller, dead_count=0, live_count=10)
        assert controller.interval == pytest.approx(75.0)

    def test_holds_in_the_healthy_band(self):
        controller = AdaptivePingController(
            60.0, window=10, target_live_fraction=0.8, relax_threshold=0.95
        )
        feed(controller, dead_count=1, live_count=9)  # 90%: between bands
        assert controller.interval == pytest.approx(60.0)
        assert controller.adjustments == 0

    def test_no_adjustment_before_window_fills(self):
        controller = AdaptivePingController(60.0, window=10)
        feed(controller, dead_count=5, live_count=4)  # only 9 outcomes
        assert controller.interval == pytest.approx(60.0)

    def test_window_resets_after_adjustment(self):
        controller = AdaptivePingController(60.0, window=4)
        feed(controller, 4, 0)   # -> 30
        feed(controller, 0, 4)   # -> 37.5
        assert controller.interval == pytest.approx(37.5)
        assert controller.adjustments == 2


class TestClamping:
    def test_min_interval_floor(self):
        controller = AdaptivePingController(10.0, window=2, min_interval=5.0)
        for _ in range(10):
            feed(controller, 2, 0)
        assert controller.interval == 5.0

    def test_max_interval_ceiling(self):
        controller = AdaptivePingController(
            500.0, window=2, max_interval=600.0
        )
        for _ in range(10):
            feed(controller, 0, 2)
        assert controller.interval == 600.0

    def test_initial_clamped_into_band(self):
        controller = AdaptivePingController(
            1000.0, min_interval=5.0, max_interval=600.0
        )
        assert controller.interval == 600.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"initial_interval": 0.0},
            {"target_live_fraction": 0.0},
            {"target_live_fraction": 1.0},
            {"min_interval": 0.0},
            {"min_interval": 100.0, "max_interval": 50.0},
            {"window": 0},
            {"tighten_factor": 1.0},
            {"relax_factor": 1.0},
            {"relax_threshold": 0.5},  # below the 0.8 target
        ],
    )
    def test_rejects(self, kwargs):
        defaults = {"initial_interval": 30.0}
        defaults.update(kwargs)
        with pytest.raises(ConfigError):
            AdaptivePingController(**defaults)


class TestClosedLoop:
    def test_converges_under_heavy_churn(self):
        """Against persistent 50% dead probes, the interval pins low."""
        controller = AdaptivePingController(300.0, window=10)
        for _ in range(20):
            feed(controller, 5, 5)
        assert controller.interval == controller.min_interval

    def test_relaxation_is_slower_than_tightening(self):
        """Safety asymmetry: one bad window undoes several good ones."""
        controller = AdaptivePingController(60.0, window=10)
        feed(controller, 0, 10)   # relax once
        relaxed = controller.interval
        feed(controller, 10, 0)   # tighten once
        assert controller.interval < 60.0 < relaxed
