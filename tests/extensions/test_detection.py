"""Tests for pong-provenance defense."""

from __future__ import annotations

import pytest

from repro.core.network_sim import GuessSimulation
from repro.core.params import BadPongBehavior, ProtocolParams, SystemParams
from repro.errors import ConfigError
from repro.extensions.detection import (
    DefenseConfig,
    PongDefense,
    install_defense,
)


class TestDefenseConfig:
    def test_defaults_valid(self):
        DefenseConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_observations": 0},
            {"dead_fraction_threshold": 0.0},
            {"dead_fraction_threshold": 1.5},
            {"barren_fraction_threshold": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            DefenseConfig(**kwargs)


class TestDeadPongHeuristic:
    def test_blacklists_dead_ip_spammer(self):
        defense = PongDefense(DefenseConfig(min_observations=5))
        for entry in range(100, 110):
            defense.record_import(entry, source=7)
            defense.record_dead(entry)
        assert defense.blocked(7)

    def test_tolerates_honest_source_with_some_dead(self):
        defense = PongDefense(
            DefenseConfig(min_observations=5, dead_fraction_threshold=0.6)
        )
        # 2 of 10 shared entries die — normal churn, not an attack.
        for entry in range(100, 110):
            defense.record_import(entry, source=7)
        for entry in range(100, 102):
            defense.record_dead(entry)
        for entry in range(102, 110):
            defense.record_answer(entry, num_results=1)
        assert not defense.blocked(7)

    def test_no_judgement_before_min_observations(self):
        defense = PongDefense(DefenseConfig(min_observations=50))
        for entry in range(100, 110):
            defense.record_import(entry, source=7)
            defense.record_dead(entry)
        assert not defense.blocked(7)

    def test_fate_charged_once(self):
        defense = PongDefense(DefenseConfig(min_observations=1))
        defense.record_import(100, source=7)
        defense.record_dead(100)
        stats_after_first = defense.source_stats(7)
        defense.record_dead(100)  # second death report is a no-op
        assert defense.source_stats(7) == stats_after_first

    def test_multiple_sources_all_charged(self):
        defense = PongDefense(DefenseConfig(min_observations=1))
        defense.record_import(100, source=7)
        defense.record_import(100, source=8)
        defense.record_dead(100)
        assert defense.source_stats(7)[1] == 1
        assert defense.source_stats(8)[1] == 1


class TestCliqueHeuristic:
    def test_blacklists_barren_clique_source(self):
        defense = PongDefense(
            DefenseConfig(min_observations=5, barren_fraction_threshold=0.9)
        )
        # Source 9's referrals are alive but never return a result.
        for entry in range(200, 210):
            defense.record_import(entry, source=9)
            defense.record_answer(entry, num_results=0)
        assert defense.blocked(9)

    def test_single_productive_referral_saves_source(self):
        defense = PongDefense(
            DefenseConfig(min_observations=5, barren_fraction_threshold=0.9)
        )
        # The productive referral lands early, so when the barren streak
        # accumulates the clique rule (which requires *zero* productive
        # referrals) never fires.
        defense.record_import(299, source=9)
        defense.record_answer(299, num_results=1)
        for entry in range(200, 220):
            defense.record_import(entry, source=9)
            defense.record_answer(entry, num_results=0)
        assert not defense.blocked(9)

    def test_blacklisted_source_imports_ignored(self):
        defense = PongDefense(DefenseConfig(min_observations=1))
        defense.record_import(100, source=7)
        defense.record_dead(100)
        assert defense.blocked(7)
        defense.record_import(101, source=7)
        assert defense.source_stats(7)[0] == 1  # not incremented


class TestEndToEndDefense:
    @staticmethod
    def _attacked_report(defended: bool):
        system = SystemParams(
            network_size=200,
            percent_bad_peers=20.0,
            bad_pong_behavior=BadPongBehavior.BAD,
        )
        protocol = ProtocolParams.all_same_policy("MR", cache_size=20)
        sim = GuessSimulation(system, protocol, seed=19, warmup=200.0)
        if defended:
            install_defense(
                sim, DefenseConfig(min_observations=5)
            )
        sim.run(900.0)
        return sim.report()

    def test_defense_preserves_satisfaction_under_collusion(self):
        undefended = self._attacked_report(defended=False)
        defended = self._attacked_report(defended=True)
        assert defended.unsatisfied_rate < undefended.unsatisfied_rate - 0.05

    def test_defense_installs_on_newborns(self):
        system = SystemParams(
            network_size=60, query_rate=0.0, lifespan_multiplier=0.05
        )
        sim = GuessSimulation(
            system, ProtocolParams(cache_size=10), seed=3
        )
        install_defense(sim)
        sim.run(1500.0)
        newborns = [p for p in sim.live_peers if p.birth_time > 0]
        assert newborns
        assert all(p.defense is not None for p in newborns if not p.malicious)
