"""Tests for the selfish-minority simulation."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams, SystemParams
from repro.errors import ConfigError
from repro.extensions.selfish import ProbeBudget
from repro.extensions.selfish_sim import SelfishGuessSimulation


def build(percent_selfish=20.0, budget_factory=None, seed=9, **system_kw):
    system = SystemParams(
        network_size=100, query_rate=0.05, **system_kw
    )
    return SelfishGuessSimulation(
        system,
        ProtocolParams(cache_size=20),
        seed=seed,
        percent_selfish=percent_selfish,
        budget_factory=budget_factory,
    )


class TestComposition:
    def test_selfish_fraction_roughly_respected(self):
        sim = build(percent_selfish=30.0)
        assert 15 <= len(sim.selfish_peers) <= 45

    def test_zero_percent_means_none(self):
        sim = build(percent_selfish=0.0)
        assert sim.selfish_peers == set()

    def test_selfish_are_good_peers(self):
        sim = build(percent_selfish=30.0, percent_bad_peers=20.0)
        bad = {p.address for p in sim.live_peers if p.malicious}
        assert sim.selfish_peers.isdisjoint(bad)

    def test_invalid_percent(self):
        with pytest.raises(ConfigError):
            build(percent_selfish=150.0)

    def test_dead_selfish_removed_from_roster(self):
        sim = build(percent_selfish=30.0, lifespan_multiplier=0.05)
        sim.run(1200.0)
        live = {p.address for p in sim.live_peers}
        assert sim.selfish_peers <= live


class TestBehaviour:
    def test_selfish_queries_separate_from_honest_report(self):
        sim = build(percent_selfish=20.0)
        sim.run(600.0)
        selfish = sim.selfish_report()
        honest = sim.report()
        assert selfish.queries > 0
        assert honest.queries > 0
        # The base report must not contain the selfish blasts: its mean
        # probes/query stays protocol-sized even though selfish queries
        # average far higher.
        assert selfish.probes_per_query > honest.probes_per_query

    def test_selfish_response_time_near_zero(self):
        sim = build(percent_selfish=20.0)
        sim.run(600.0)
        selfish = sim.selfish_report()
        assert selfish.mean_response_time is not None
        assert selfish.mean_response_time < 0.3  # one wave

    def test_payments_cap_selfish_probes(self):
        capped = build(
            percent_selfish=20.0,
            budget_factory=lambda: ProbeBudget(refill_rate=0.05, capacity=10),
            seed=5,
        )
        capped.run(600.0)
        uncapped = build(percent_selfish=20.0, seed=5)
        uncapped.run(600.0)
        assert (
            capped.selfish_report().probes_per_query
            < uncapped.selfish_report().probes_per_query
        )

    def test_empty_budget_produces_broke_queries(self):
        sim = build(
            percent_selfish=20.0,
            budget_factory=lambda: ProbeBudget(
                refill_rate=0.0, capacity=1.0, initial=0
            ),
        )
        sim.run(600.0)
        selfish = sim.selfish_report()
        assert selfish.broke_queries == selfish.queries

    def test_selfish_report_rates(self):
        sim = build(percent_selfish=20.0)
        sim.run(600.0)
        selfish = sim.selfish_report()
        assert 0.0 <= selfish.unsatisfied_rate <= 1.0
        assert selfish.satisfied <= selfish.queries

    def test_no_selfish_report_is_empty(self):
        sim = build(percent_selfish=0.0)
        sim.run(300.0)
        selfish = sim.selfish_report()
        assert selfish.queries == 0
        assert selfish.unsatisfied_rate == 0.0
