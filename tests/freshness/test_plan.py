"""Validation and semantics of FreshnessPlan / CacheSizing."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.errors import FreshnessError
from repro.freshness import CACHE_SIZING_POLICIES, CacheSizing, FreshnessPlan
from repro.freshness.mediator import FreshnessMediator
from repro.sim.rng import RngRegistry


class TestCacheSizingValidation:
    def test_default_is_noop(self):
        assert CacheSizing().is_noop()

    @pytest.mark.parametrize("policy", CACHE_SIZING_POLICIES)
    def test_known_policies_accepted(self, policy):
        assert CacheSizing(policy=policy).policy == policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(FreshnessError):
            CacheSizing(policy="lognormal")

    def test_reference_files_must_be_positive(self):
        with pytest.raises(FreshnessError):
            CacheSizing(reference_files=0)

    def test_alpha_must_exceed_one(self):
        with pytest.raises(FreshnessError):
            CacheSizing(policy="power-law", alpha=1.0)

    def test_negative_bounds_rejected(self):
        with pytest.raises(FreshnessError):
            CacheSizing(min_capacity=-1)
        with pytest.raises(FreshnessError):
            CacheSizing(max_capacity=-1)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(FreshnessError):
            CacheSizing(min_capacity=5, max_capacity=3)

    def test_zero_max_capacity_means_unbounded(self):
        sizing = CacheSizing(min_capacity=5, max_capacity=0)
        assert sizing.max_capacity == 0


class TestCacheSizingCapacities:
    def test_uniform_returns_base(self):
        rng = random.Random(1)
        assert CacheSizing().capacity_for(30, 10_000, rng) == 30

    def test_proportional_scales_with_files(self):
        sizing = CacheSizing(policy="proportional", reference_files=100)
        rng = random.Random(1)
        assert sizing.capacity_for(30, 100, rng) == 30
        assert sizing.capacity_for(30, 200, rng) == 60
        assert sizing.capacity_for(30, 50, rng) == 15

    def test_proportional_is_draw_free(self):
        sizing = CacheSizing(policy="proportional")
        rng = random.Random(7)
        before = rng.getstate()
        sizing.capacity_for(30, 123, rng)
        assert rng.getstate() == before

    def test_proportional_floor(self):
        sizing = CacheSizing(policy="proportional", min_capacity=2)
        assert sizing.capacity_for(30, 0, random.Random(1)) == 2

    def test_zero_floor_allows_cacheless_peers(self):
        sizing = CacheSizing(policy="proportional", min_capacity=0)
        assert sizing.capacity_for(30, 0, random.Random(1)) == 0

    def test_ceiling_applied(self):
        sizing = CacheSizing(
            policy="proportional", reference_files=10, max_capacity=40
        )
        assert sizing.capacity_for(30, 1000, random.Random(1)) == 40

    def test_power_law_mean_normalized_to_base(self):
        sizing = CacheSizing(policy="power-law", alpha=3.0, min_capacity=0)
        rng = random.Random(11)
        draws = [sizing.capacity_for(30, 10, rng) for _ in range(4000)]
        mean = sum(draws) / len(draws)
        # Pareto(3) normalized to mean 1 -> population mean ~ base.
        assert 27.0 < mean < 33.0

    def test_power_law_draws_exactly_once(self):
        sizing = CacheSizing(policy="power-law")
        a, b = random.Random(5), random.Random(5)
        sizing.capacity_for(30, 10, a)
        b.paretovariate(sizing.alpha)
        assert a.getstate() == b.getstate()


class TestFreshnessPlanValidation:
    def test_default_is_noop(self):
        plan = FreshnessPlan()
        assert plan.is_noop()
        assert not plan.invalidates

    def test_budget_arms_invalidation(self):
        plan = FreshnessPlan(notify_budget=3)
        assert plan.invalidates
        assert not plan.is_noop()

    def test_zero_depth_disables_invalidation(self):
        plan = FreshnessPlan(notify_budget=3, depth=0)
        assert not plan.invalidates
        assert plan.is_noop()

    def test_sizing_alone_arms_the_plan(self):
        plan = FreshnessPlan(sizing=CacheSizing(policy="power-law"))
        assert not plan.invalidates
        assert not plan.is_noop()

    def test_negative_budget_rejected(self):
        with pytest.raises(FreshnessError):
            FreshnessPlan(notify_budget=-1)

    def test_negative_depth_rejected(self):
        with pytest.raises(FreshnessError):
            FreshnessPlan(depth=-1)

    def test_nonpositive_delay_rejected(self):
        with pytest.raises(FreshnessError):
            FreshnessPlan(notify_delay=0.0)

    def test_sizing_type_checked(self):
        with pytest.raises(FreshnessError):
            FreshnessPlan(sizing={"policy": "uniform"})  # type: ignore[arg-type]

    def test_with_revalidates(self):
        plan = FreshnessPlan(notify_budget=2)
        assert plan.with_(depth=3).depth == 3
        with pytest.raises(FreshnessError):
            plan.with_(notify_budget=-5)

    def test_plan_pickles(self):
        plan = FreshnessPlan(
            notify_budget=3, depth=2,
            sizing=CacheSizing(policy="power-law", alpha=2.5),
        )
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestMediatorGating:
    def test_from_plan_none(self):
        assert FreshnessMediator.from_plan(None, RngRegistry(1)) is None

    def test_from_plan_noop(self):
        assert FreshnessMediator.from_plan(FreshnessPlan(), RngRegistry(1)) is None

    def test_from_plan_armed(self):
        mediator = FreshnessMediator.from_plan(
            FreshnessPlan(notify_budget=2), RngRegistry(1)
        )
        assert mediator is not None
        assert mediator.plan.notify_budget == 2

    def test_uniform_sizing_under_armed_plan_returns_base(self):
        mediator = FreshnessMediator.from_plan(
            FreshnessPlan(notify_budget=2), RngRegistry(1)
        )
        assert mediator.cache_capacity(30, 5000) == 30

    def test_pick_contacts_respects_budget_and_seen(self):
        mediator = FreshnessMediator.from_plan(
            FreshnessPlan(notify_budget=2), RngRegistry(1)
        )
        contacts = mediator.pick_contacts([1, 2, 3, 4], {2})
        assert len(contacts) == 2
        assert 2 not in contacts
        assert set(contacts) <= {1, 3, 4}

    def test_pick_contacts_under_budget_is_draw_free(self):
        registry = RngRegistry(1)
        mediator = FreshnessMediator.from_plan(
            FreshnessPlan(notify_budget=5), registry
        )
        stream = registry.stream("freshness:notify")
        before = stream.getstate()
        assert mediator.pick_contacts([1, 2], set()) == [1, 2]
        assert stream.getstate() == before
