"""CacheUpdate handler semantics (push invalidation, repro.freshness)."""

from __future__ import annotations

import pytest

from repro.core.messages import CacheUpdate, CacheUpdateAck, Ping
from repro.resilience.breaker import BreakerSpec, CLOSED, OPEN
from repro.resilience.policy import ResiliencePolicy
from tests.conftest import make_entry
from tests.core.helpers import make_peer


def seeded_peer(*cached, resilience=None, cache_capacity=None):
    peer = make_peer(
        1, resilience=resilience, cache_capacity=cache_capacity
    )
    for addr in cached:
        assert peer.offer_entry_to_link_cache(make_entry(addr), 0.0)
    return peer


class TestDepartureNotice:
    def test_purges_cached_subject(self):
        peer = seeded_peer(5, 6)
        ok, ack = peer.receive_probe(
            CacheUpdate(sender=9, subject=5, departed=True), 1.0
        )
        assert ok
        assert isinstance(ack, CacheUpdateAck)
        assert ack.purged
        assert 5 not in peer.link_cache
        assert 6 in peer.link_cache

    def test_unknown_subject_reports_not_purged(self):
        peer = seeded_peer(6)
        ok, ack = peer.receive_probe(
            CacheUpdate(sender=9, subject=5, departed=True), 1.0
        )
        assert ok
        assert not ack.purged
        assert 6 in peer.link_cache

    def test_discards_breaker_state_with_the_entry(self):
        policy = ResiliencePolicy(breaker=BreakerSpec(failure_threshold=1))
        peer = seeded_peer(5, resilience=policy)
        peer.breakers.record_refusal(5, 0.5)
        assert peer.breakers.state_of(5) == OPEN
        _, ack = peer.receive_probe(
            CacheUpdate(sender=9, subject=5, departed=True), 1.0
        )
        assert ack.purged
        assert peer.breakers.state_of(5) == CLOSED  # lazily re-created state
        assert len(peer.breakers) == 0

    def test_ack_piggybacks_refresh_pong(self):
        peer = seeded_peer(5, 6, 7)
        _, ack = peer.receive_probe(
            CacheUpdate(sender=9, subject=5, departed=True), 1.0
        )
        addresses = {e.address for e in ack.pong.entries}
        assert addresses  # live carrier offers replacements...
        assert 5 not in addresses  # ...never the just-purged subject


class TestOverloadNotice:
    def test_breaker_armed_receiver_keeps_entry_behind_breaker(self):
        policy = ResiliencePolicy(breaker=BreakerSpec(failure_threshold=1))
        peer = seeded_peer(5, resilience=policy)
        _, ack = peer.receive_probe(
            CacheUpdate(sender=9, subject=5, departed=False), 1.0
        )
        assert ack.purged  # "held the entry": the interest-path signal
        assert 5 in peer.link_cache  # kept — the breaker does the gating
        assert peer.breakers.state_of(5) == OPEN

    def test_sub_threshold_relay_just_counts(self):
        policy = ResiliencePolicy(breaker=BreakerSpec(failure_threshold=3))
        peer = seeded_peer(5, resilience=policy)
        _, ack = peer.receive_probe(
            CacheUpdate(sender=9, subject=5, departed=False), 1.0
        )
        assert ack.purged
        assert 5 in peer.link_cache
        assert peer.breakers.state_of(5) == CLOSED

    def test_plain_receiver_evicts(self):
        peer = seeded_peer(5)
        assert peer.breakers is None
        _, ack = peer.receive_probe(
            CacheUpdate(sender=9, subject=5, departed=False), 1.0
        )
        assert ack.purged
        assert 5 not in peer.link_cache

    def test_unknown_subject_is_noop(self):
        peer = seeded_peer(6)
        _, ack = peer.receive_probe(
            CacheUpdate(sender=9, subject=5, departed=False), 1.0
        )
        assert not ack.purged
        assert 6 in peer.link_cache


class TestRateLimiting:
    def test_update_shed_like_maintenance_traffic(self):
        """CacheUpdate rides the soft-shed lane with pings and gossip:
        above the soft threshold it is refused without burning window
        capacity reserved for queries."""
        from repro.resilience.policy import SheddingSpec

        peer = make_peer(
            1,
            max_probes_per_second=2,
            resilience=ResiliencePolicy(shedding=SheddingSpec(soft_fraction=0.5)),
        )
        ok_first, _ = peer.receive_probe(
            Ping(sender=2, sender_num_files=1), 0.0
        )
        assert ok_first
        ok, refusal = peer.receive_probe(
            CacheUpdate(sender=9, subject=5, departed=True), 0.0
        )
        assert not ok
        assert peer.pings_shed >= 1
