"""LinkCache behaviour at heterogeneous (CacheSizing-assigned) capacities."""

from __future__ import annotations

import random

import pytest

from repro.core.link_cache import LinkCache
from repro.core.params import ProtocolParams
from repro.core.policies import get_replacement_policy
from tests.conftest import make_entry
from tests.core.helpers import make_peer


@pytest.fixture
def rng():
    return random.Random(33)


@pytest.fixture
def random_replacement():
    return get_replacement_policy("Random")


@pytest.fixture
def lfs():
    return get_replacement_policy("LFS")


class TestZeroSlotCache:
    def test_refuses_every_insert(self, random_replacement, rng):
        cache = LinkCache(capacity=0, owner=0)
        assert not cache.insert(make_entry(1), random_replacement, 0.0, rng)
        assert len(cache) == 0
        assert not cache.is_full or cache.capacity == 0

    def test_refusal_burns_no_policy_draw(self, random_replacement):
        """A zero-slot cache must not consult the replacement policy —
        an eviction contest with no residents would spend a Random draw
        deciding nothing, skewing downstream draw sequences between
        peers that differ only in assigned capacity."""
        cache = LinkCache(capacity=0, owner=0)
        rng = random.Random(9)
        before = rng.getstate()
        cache.insert(make_entry(1), random_replacement, 0.0, rng)
        assert rng.getstate() == before

    def test_evict_and_iterate_safe(self, random_replacement, rng):
        cache = LinkCache(capacity=0, owner=0)
        assert cache.evict(1) is False
        assert cache.entries() == []
        assert list(cache.addresses()) == []


class TestOneSlotCache:
    def test_single_resident(self, random_replacement, rng):
        cache = LinkCache(capacity=1, owner=0)
        assert cache.insert(make_entry(1), random_replacement, 0.0, rng)
        assert cache.is_full
        assert len(cache) == 1

    def test_eviction_contest_is_head_to_head(self, lfs, rng):
        cache = LinkCache(capacity=1, owner=0)
        cache.insert(make_entry(1, num_files=5), lfs, 0.0, rng)
        # LFS: 50-file newcomer displaces the 5-file resident.
        assert cache.insert(make_entry(2, num_files=50), lfs, 1.0, rng)
        assert set(cache.addresses()) == {2}
        # ...and a 1-file newcomer loses to the 50-file resident.
        assert not cache.insert(make_entry(3, num_files=1), lfs, 2.0, rng)
        assert set(cache.addresses()) == {2}
        assert len(cache) == 1


class TestMixedSizesUnderChurn:
    """Caches of different sizes evolving side by side stay bounded and
    correct through tombstone compaction."""

    @pytest.mark.parametrize("capacity", [1, 2, 5, 13])
    def test_insert_evict_cycles_stay_bounded(
        self, capacity, random_replacement
    ):
        rng = random.Random(capacity)
        cache = LinkCache(capacity=capacity, owner=0)
        model: set[int] = set()
        for step in range(400):
            addr = 1 + (step * 7) % 60
            if step % 3 == 2 and model:
                victim = sorted(model)[step % len(model)]
                assert cache.evict(victim) is True
                model.discard(victim)
            elif addr not in model:
                if cache.insert(make_entry(addr), random_replacement, float(step), rng):
                    model.add(addr)
                    if len(model) > capacity:
                        # Policy evicted a resident; resync from the cache.
                        model = set(cache.addresses())
            assert len(cache) == len(model) <= capacity
            assert set(cache.addresses()) == model
        # Compaction keeps the slot list near capacity, not history-sized.
        assert len(cache._slots) <= max(2 * capacity, 1) + 1

    def test_compaction_preserves_insertion_order(self, random_replacement, rng):
        cache = LinkCache(capacity=4, owner=0)
        for a in (1, 2, 3, 4):
            cache.insert(make_entry(a), random_replacement, 0.0, rng)
        cache.evict(1)
        cache.evict(3)
        cache.insert(make_entry(5), random_replacement, 1.0, rng)
        cache.insert(make_entry(6), random_replacement, 1.0, rng)
        # Survivors first (in original order), then re-fills.
        assert [e.address for e in cache.entries()] == [2, 4, 5, 6]


class TestPeerCapacityOverride:
    def test_default_follows_protocol(self):
        protocol = ProtocolParams(cache_size=10)
        peer = make_peer(1, protocol=protocol)
        assert peer.link_cache.capacity == 10

    def test_override_wins(self):
        peer = make_peer(1, protocol=ProtocolParams(cache_size=10), cache_capacity=3)
        assert peer.link_cache.capacity == 3

    def test_zero_capacity_peer_still_answers(self):
        """A cacheless peer keeps serving: pongs are just empty."""
        peer = make_peer(1, cache_capacity=0)
        pong = peer.make_pong(peer.policies.ping_pong, 1.0)
        assert pong.entries == ()
        ok = peer.offer_entry_to_link_cache(make_entry(2), 1.0)
        assert not ok
        assert len(peer.link_cache) == 0
