"""Tests for the package's public surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_types_exported(self):
        assert repro.GuessSimulation
        assert repro.SystemParams
        assert repro.ProtocolParams
        assert repro.SimulationReport

    def test_quickstart_snippet_runs(self):
        """The README / module docstring example must keep working."""
        sim = repro.GuessSimulation(
            repro.SystemParams(network_size=50, query_rate=0.05),
            repro.ProtocolParams(query_pong="MFS", cache_size=10),
            seed=7,
        )
        sim.run(200.0)
        report = sim.report()
        assert report.queries > 0
        assert 0.0 <= report.unsatisfied_rate <= 1.0


class TestSubpackageImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.sim",
            "repro.network",
            "repro.workload",
            "repro.core",
            "repro.baselines",
            "repro.metrics",
            "repro.experiments",
            "repro.reporting",
            "repro.extensions",
            "repro.analysis",
            "repro.observe",
            "repro.faults",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_policy_registry_names(self):
        assert repro.registered_policy_names() == [
            "LRU", "MFS", "MR", "MRU", "Random",
        ]


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in (
            "ConfigError",
            "PolicyError",
            "SimulationError",
            "TopologyError",
            "WorkloadError",
        ):
            error = getattr(repro, name)
            assert issubclass(error, repro.ReproError)

    def test_config_error_is_value_error(self):
        assert issubclass(repro.ConfigError, ValueError)

    def test_policy_error_is_key_error(self):
        assert issubclass(repro.PolicyError, KeyError)
