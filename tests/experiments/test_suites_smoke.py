"""End-to-end smoke tests: every experiment suite runs and produces the
right experiment ids, columns, and series shapes at micro scale.

These use a tiny in-test profile (far below the ``smoke`` registry
profile) so the whole block stays fast; the *qualitative* paper shapes
are asserted separately in the integration tests at larger scale.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    cache_size,
    capacity,
    fairness,
    flexible_extent,
    malicious,
    packet_loss,
    ping_interval,
    policy_comparison,
)
from repro.experiments.profiles import Profile
from repro.observe.manifest import ManifestRecorder, activated

MICRO = Profile(
    name="micro",
    duration=120.0,
    warmup=30.0,
    trials=1,
    network_sizes=(60,),
    reference_size=60,
    cache_sizes=(5, 20),
    ping_intervals=(15.0, 120.0),
    baseline_queries=60,
    max_extent=60,
)


class TestCacheSizeSuite:
    @pytest.fixture(scope="class")
    def results(self):
        return cache_size.run_suite(MICRO)

    def test_ids(self, results):
        assert [r.experiment_id for r in results] == [
            "table3", "fig3", "fig4", "fig5",
        ]

    def test_table3_rows(self, results):
        table3 = results[0]
        assert table3.columns == ("CacheSize", "Fraction Live", "Absolute Live")
        for _, fraction, absolute in table3.rows:
            assert 0.0 <= fraction <= 1.0
            assert absolute >= 0.0

    def test_fig3_series_per_network(self, results):
        fig3 = results[1]
        assert set(fig3.series) == {"N=60"}
        assert len(fig3.series["N=60"]) == 2

    def test_fig5_series(self, results):
        fig5 = results[3]
        assert set(fig5.series) == {"Dead", "Good"}


class TestPingIntervalSuite:
    @pytest.fixture(scope="class")
    def results(self):
        return ping_interval.run_suite(MICRO)

    def test_ids(self, results):
        assert [r.experiment_id for r in results] == ["fig6", "fig7"]

    def test_fig6_lcc_bounds(self, results):
        for label, points in results[0].series.items():
            for _, lcc in points:
                assert 1 <= lcc <= 60

    def test_fig7_relative_lcc(self, results):
        for points in results[1].series.values():
            for _, relative in points:
                assert 0.0 < relative <= 1.0


class TestFlexibleExtentSuite:
    @pytest.fixture(scope="class")
    def result(self):
        return flexible_extent.run_fig8(MICRO)

    def test_id(self, result):
        assert result.experiment_id == "fig8"

    def test_mechanisms_present(self, result):
        assert "FixedExtent(Gnutella)" in result.series
        assert "IterativeDeepening" in result.series
        assert "GUESS Random" in result.series
        assert "GUESS QueryPong=MFS" in result.series

    def test_fixed_extent_curve_monotone(self, result):
        curve = result.series["FixedExtent(Gnutella)"]
        rates = [u for _, u in curve]
        assert rates == sorted(rates, reverse=True)

    def test_guess_cheaper_than_full_flood(self, result):
        guess_cost, _ = result.series["GUESS Random"][0]
        flood_costs = [c for c, _ in result.series["FixedExtent(Gnutella)"]]
        assert guess_cost < max(flood_costs)


class TestPolicyComparisonSuite:
    @pytest.fixture(scope="class")
    def results(self):
        return policy_comparison.run_suite(MICRO)

    def test_ids(self, results):
        assert [r.experiment_id for r in results] == [
            "fig9", "fig10", "fig11", "fig12",
        ]

    def test_policy_menus(self, results):
        fig9, fig10, fig11, fig12 = results
        assert [row[0] for row in fig9.rows] == list(
            policy_comparison.ORDERING_POLICIES
        )
        assert [row[0] for row in fig11.rows] == list(
            policy_comparison.REPLACEMENT_POLICIES
        )

    def test_probe_breakdown_consistent(self, results):
        for result in results[:3]:
            for row in result.rows:
                _, good, dead, total = row
                assert total == pytest.approx(good + dead, abs=1e-6)

    def test_fig12_rates_valid(self, results):
        for _, unsat in results[3].rows:
            assert 0.0 <= unsat <= 1.0


class TestFairnessSuite:
    @pytest.fixture(scope="class")
    def result(self):
        return fairness.run_fig13(MICRO)

    def test_id(self, result):
        assert result.experiment_id == "fig13"

    def test_all_combos_present(self, result):
        expected = {f"{p}/{r}" for p, r in fairness.COMBOS}
        assert set(result.series) == expected

    def test_ranked_series_descending(self, result):
        for points in result.series.values():
            loads = [load for _, load in points]
            assert loads == sorted(loads, reverse=True)

    def test_summary_rows(self, result):
        assert result.columns == ("Combo", "Total probes", "Top-1% share", "Gini")
        for _, total, share, gini in result.rows:
            assert total >= 0
            assert 0.0 <= share <= 1.0
            assert 0.0 <= gini <= 1.0


class TestCapacitySuite:
    @pytest.fixture(scope="class")
    def results(self):
        return capacity.run_suite(MICRO)

    def test_ids(self, results):
        assert [r.experiment_id for r in results] == ["fig14", "fig15"]

    def test_fig14_grid_complete(self, results):
        rows = results[0].rows
        assert len(rows) == len(MICRO.network_sizes) * len(capacity.CAPACITIES)

    def test_fig15_series(self, results):
        assert set(results[1].series) == {
            f"N={n}" for n in MICRO.network_sizes
        }


class TestMaliciousSuite:
    @pytest.fixture(scope="class")
    def results(self):
        return malicious.run_suite(MICRO)

    def test_ids(self, results):
        assert [r.experiment_id for r in results] == [
            "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
        ]

    def test_each_figure_has_all_policies(self, results):
        for result in results:
            assert set(result.series) == set(malicious.POLICIES)

    def test_unsat_rates_valid(self, results):
        for result in (results[1], results[4]):  # fig17, fig20
            for points in result.series.values():
                for _, unsat in points:
                    assert 0.0 <= unsat <= 1.0

    def test_good_entries_nonnegative(self, results):
        for result in (results[2], results[5]):  # fig18, fig21
            for points in result.series.values():
                for _, entries in points:
                    assert entries >= 0.0


class TestPacketLossSuite:
    @pytest.fixture(scope="class")
    def captured(self):
        """Suite results plus the manifest its run records."""
        recorder = ManifestRecorder()
        with activated(recorder):
            results = packet_loss.run_suite(MICRO)
        manifest = recorder.build(
            profile=MICRO.name,
            suites=["packet_loss"],
            workers=1,
            wall_clock_seconds=0.0,
        )
        return results, manifest

    @pytest.fixture(scope="class")
    def results(self, captured):
        return captured[0]

    def test_ids(self, results):
        assert [r.experiment_id for r in results] == [
            "loss_grid", "loss_satisfaction",
        ]

    def test_grid_complete(self, results):
        rows = results[0].rows
        assert len(rows) == len(packet_loss.LOSS_RATES) * len(
            packet_loss.RETRY_BUDGETS
        )
        assert {(loss, retries) for loss, retries, *_ in rows} == {
            (loss, retries)
            for loss in packet_loss.LOSS_RATES
            for retries in packet_loss.RETRY_BUDGETS
        }

    def test_grid_rates_valid(self, results):
        for row in results[0].rows:
            satisfied, recovery, live = row[2], row[7], row[8]
            assert 0.0 <= satisfied <= 1.0
            assert 0.0 <= recovery <= 1.0
            assert 0.0 <= live <= 1.0

    def test_satisfaction_series_per_budget(self, results):
        series = results[1].series
        assert set(series) == {
            f"retries={r}" for r in packet_loss.RETRY_BUDGETS
        }
        for points in series.values():
            assert [x for x, _ in points] == list(packet_loss.LOSS_RATES)

    def test_manifest_covers_grid_and_round_trips(self, captured):
        import json

        _, manifest = captured
        cells = len(packet_loss.LOSS_RATES) * len(packet_loss.RETRY_BUDGETS)
        assert len(manifest["configs"]) == cells
        for entry in manifest["configs"]:
            assert entry["trials"] == MICRO.trials
            assert all(digest for digest in entry["trace_digests"])
        # The whole manifest survives a JSON round-trip untouched.
        assert json.loads(json.dumps(manifest)) == manifest
