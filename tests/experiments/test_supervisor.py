"""Supervised execution: watchdog, retry, quarantine, checkpoint/resume.

The supervisor's headline guarantee is that none of its machinery is
visible in the results: a sweep whose workers crashed (raise /
``os._exit`` / hang) and that was killed and resumed from its journal
produces reports and trace digests byte-identical to a one-shot serial
run.  These tests drive every failure mode through the deterministic
chaos hook and pin that guarantee — including the three golden digests
from ``tests/integration/test_determinism.py`` run under supervision.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.params import BadPongBehavior, ProtocolParams, SystemParams
from repro.errors import ChaosError, ConfigError, TrialFailure
from repro.experiments.executor import (
    ChaosSpec,
    TrialSpec,
    _apply_chaos,
    execute_trial,
)
from repro.experiments.runner import averaged, run_guess_config
from repro.experiments.supervisor import (
    SupervisedTrialExecutor,
    SweepInterrupted,
    TrialJournal,
    trial_fingerprint,
    verify_journal_against_manifest,
)
from repro.faults.plan import FaultPlan
from repro.observe.manifest import ManifestRecorder, activated

SYSTEM = SystemParams(network_size=30)
PROTOCOL = ProtocolParams(cache_size=8)


def _spec(seed: int, *, chaos: ChaosSpec | None = None) -> TrialSpec:
    return TrialSpec(
        system=SYSTEM,
        protocol=PROTOCOL,
        duration=40.0,
        warmup=5.0,
        seed=seed,
        trace_hash=True,
        chaos=chaos,
    )


def _fields(report) -> dict:
    return {key: repr(value) for key, value in vars(report).items()}


def _serial(seeds) -> list:
    return [execute_trial(_spec(seed)) for seed in seeds]


class TestConstruction:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            SupervisedTrialExecutor(workers=-2)
        with pytest.raises(ConfigError):
            SupervisedTrialExecutor(max_attempts=0)
        with pytest.raises(ConfigError):
            SupervisedTrialExecutor(trial_timeout=0.0)

    def test_zero_workers_means_one_per_cpu(self):
        with SupervisedTrialExecutor(workers=0) as executor:
            assert executor.workers >= 1


class TestSupervisedBasics:
    def test_map_preserves_order(self):
        with SupervisedTrialExecutor(workers=2) as executor:
            assert executor.map(abs, [-5, 2, -1, 0, 7]) == [5, 2, 1, 0, 7]

    def test_matches_serial_execution(self):
        seeds = [11, 12, 13]
        with SupervisedTrialExecutor(workers=2) as executor:
            supervised = executor.run_trials([_spec(s) for s in seeds])
        for left, right in zip(supervised, _serial(seeds)):
            assert _fields(left) == _fields(right)

    def test_single_item_batch_is_crash_isolated(self):
        # Unlike ProcessTrialExecutor's in-process bypass, a supervised
        # single-item batch runs in a worker: an os._exit must kill a
        # worker, never the parent.
        chaos = ChaosSpec(mode="exit")
        with SupervisedTrialExecutor(workers=2, max_attempts=1) as executor:
            [result] = executor.run_trials([_spec(1, chaos=chaos)])
        assert isinstance(result, TrialFailure)
        assert result.kind == "crash"


class TestChaosHook:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError):
            ChaosSpec(mode="explode")

    def test_bounded_chaos_requires_marker_dir(self):
        with pytest.raises(ConfigError):
            ChaosSpec(mode="raise", times=1)

    def test_marker_counts_attempts(self, tmp_path):
        chaos = ChaosSpec(
            mode="raise", times=2, marker_dir=str(tmp_path), key="k"
        )
        with pytest.raises(ChaosError):
            _apply_chaos(chaos)
        with pytest.raises(ChaosError):
            _apply_chaos(chaos)
        _apply_chaos(chaos)  # budget spent: clean from now on
        _apply_chaos(chaos)

    def test_chaos_fires_before_simulation(self):
        # A surviving attempt's report must carry no trace of chaos:
        # the hook runs before the simulation exists.
        with pytest.raises(ChaosError):
            execute_trial(_spec(3, chaos=ChaosSpec(mode="raise")))


class TestCrashRetry:
    @pytest.mark.parametrize("mode", ["raise", "exit"])
    def test_retry_reproduces_serial_report(self, tmp_path, mode):
        chaos = ChaosSpec(
            mode=mode, times=1, marker_dir=str(tmp_path), key=f"c-{mode}"
        )
        specs = [_spec(21), _spec(22, chaos=chaos), _spec(23)]
        with SupervisedTrialExecutor(workers=2) as executor:
            supervised = executor.run_trials(specs)
            assert executor.failures == []
        for left, right in zip(supervised, _serial([21, 22, 23])):
            assert _fields(left) == _fields(right)

    def test_watchdog_kills_hung_worker_and_retries(self, tmp_path):
        chaos = ChaosSpec(
            mode="hang",
            times=1,
            marker_dir=str(tmp_path),
            key="h",
            hang_seconds=300.0,
        )
        specs = [_spec(31, chaos=chaos), _spec(32)]
        with SupervisedTrialExecutor(
            workers=2, trial_timeout=5.0
        ) as executor:
            supervised = executor.run_trials(specs)
            assert executor.failures == []
        for left, right in zip(supervised, _serial([31, 32])):
            assert _fields(left) == _fields(right)


class TestQuarantine:
    def test_exhausted_trial_becomes_failure_without_aborting_siblings(self):
        specs = [_spec(41), _spec(42, chaos=ChaosSpec(mode="raise")),
                 _spec(43)]
        with SupervisedTrialExecutor(workers=2, max_attempts=2) as executor:
            results = executor.run_trials(specs)
            assert [f.index for f in executor.failures] == [1]
        failure = results[1]
        assert isinstance(failure, TrialFailure)
        assert failure.attempts == 2
        assert failure.kind == "error"
        assert "ChaosError" in failure.error
        assert failure.trace_digest is None
        for index in (0, 2):
            assert _fields(results[index]) == _fields(
                execute_trial(specs[index])
            )

    def test_quarantined_trial_reruns_on_resume(self, tmp_path):
        journal = str(tmp_path / "t.journal.jsonl")
        # Sabotage budget = 2 failed attempts; the first run quarantines
        # at max_attempts=2, the resumed run finds the budget spent and
        # completes the trial cleanly.
        chaos = ChaosSpec(
            mode="raise", times=2, marker_dir=str(tmp_path), key="q"
        )
        specs = [_spec(51), _spec(52, chaos=chaos)]
        with SupervisedTrialExecutor(
            workers=2, max_attempts=2, journal=journal
        ) as executor:
            first = executor.run_trials(specs)
        assert isinstance(first[1], TrialFailure)
        with SupervisedTrialExecutor(
            workers=2, max_attempts=2, journal=journal, resume=True
        ) as executor:
            resumed = executor.run_trials(specs)
            assert executor.failures == []
        serial = _serial([51, 52])
        for left, right in zip(resumed, serial):
            assert _fields(left) == _fields(right)

    def test_run_guess_config_surfaces_failure_in_suite_output(self):
        kwargs = dict(duration=40.0, warmup=5.0, trials=3, base_seed=77)
        with SupervisedTrialExecutor(workers=2, max_attempts=1) as executor:
            reports = run_guess_config(
                SYSTEM,
                PROTOCOL,
                executor=executor,
                chaos={1: ChaosSpec(mode="raise")},
                **kwargs,
            )
        serial = run_guess_config(SYSTEM, PROTOCOL, **kwargs)
        assert len(reports) == 3
        assert isinstance(reports[1], TrialFailure)
        assert _fields(reports[0]) == _fields(serial[0])
        assert _fields(reports[2]) == _fields(serial[2])
        # averaged() folds over the surviving trials only.
        expected = (serial[0].probes_per_query
                    + serial[2].probes_per_query) / 2
        assert averaged(reports, "probes_per_query") == pytest.approx(
            expected
        )


class TestJournal:
    def test_checkpoints_written_as_trials_finish(self, tmp_path):
        journal_path = str(tmp_path / "t.journal.jsonl")
        specs = [_spec(61), _spec(62)]
        with SupervisedTrialExecutor(
            workers=2, journal=journal_path
        ) as executor:
            executor.run_trials(specs)
        lines = [
            json.loads(line)
            for line in open(journal_path, encoding="utf-8")
        ]
        assert len(lines) == 2
        assert {line["kind"] for line in lines} == {"report"}
        fingerprints = {line["fingerprint"] for line in lines}
        assert fingerprints == {
            trial_fingerprint(execute_trial, spec) for spec in specs
        }
        digests = {line["digest"] for line in lines}
        assert digests == {
            report.trace_digest for report in _serial([61, 62])
        }

    def test_resume_skips_completed_trials(self, tmp_path):
        journal_path = str(tmp_path / "t.journal.jsonl")
        specs = [_spec(71), _spec(72), _spec(73)]
        # "Kill" after two trials: run only a prefix, then resume the
        # full sweep from the journal.
        with SupervisedTrialExecutor(
            workers=2, journal=journal_path
        ) as executor:
            executor.run_trials(specs[:2])
        with SupervisedTrialExecutor(
            workers=2, journal=journal_path, resume=True
        ) as executor:
            assert len(executor.journal) == 2
            resumed = executor.run_trials(specs)
        for left, right in zip(resumed, _serial([71, 72, 73])):
            assert _fields(left) == _fields(right)

    def test_torn_tail_line_is_skipped(self, tmp_path):
        journal_path = str(tmp_path / "t.journal.jsonl")
        with SupervisedTrialExecutor(
            workers=2, journal=journal_path
        ) as executor:
            executor.run_trials([_spec(81)])
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "report", "fingerpr')  # crash mid-write
        journal = TrialJournal(journal_path, resume=True)
        try:
            assert len(journal) == 1
        finally:
            journal.close()

    def test_fresh_journal_truncates_stale_file(self, tmp_path):
        journal_path = str(tmp_path / "t.journal.jsonl")
        with open(journal_path, "w", encoding="utf-8") as handle:
            handle.write("stale\n")
        journal = TrialJournal(journal_path)
        journal.close()
        assert os.path.getsize(journal_path) == 0


class TestStopDrain:
    def test_stop_before_map_raises_sweep_interrupted(self, tmp_path):
        journal_path = str(tmp_path / "t.journal.jsonl")
        with SupervisedTrialExecutor(
            workers=2, journal=journal_path
        ) as executor:
            executor.run_trials([_spec(91)])
            executor.request_stop()
            with pytest.raises(SweepInterrupted):
                executor.run_trials([_spec(91), _spec(92)])
        # The journaled trial survived the interrupt.
        with SupervisedTrialExecutor(
            workers=2, journal=journal_path, resume=True
        ) as executor:
            assert len(executor.journal) == 1

    def test_cached_results_returned_even_after_stop(self, tmp_path):
        journal_path = str(tmp_path / "t.journal.jsonl")
        specs = [_spec(95), _spec(96)]
        with SupervisedTrialExecutor(
            workers=2, journal=journal_path
        ) as executor:
            executor.run_trials(specs)
        with SupervisedTrialExecutor(
            workers=2, journal=journal_path, resume=True
        ) as executor:
            executor.request_stop()
            # Everything is served from the journal: nothing left to
            # run, so the "interrupted" path never triggers.
            resumed = executor.run_trials(specs)
        for left, right in zip(resumed, _serial([95, 96])):
            assert _fields(left) == _fields(right)


class TestResumeEqualsFresh:
    """The acceptance pin: crash N times, resume, get serial bytes."""

    def test_all_three_crash_modes_killed_and_resumed(self, tmp_path):
        marker = str(tmp_path)
        journal_path = str(tmp_path / "t.journal.jsonl")
        seeds = [101, 102, 103, 104, 105]
        chaos = {
            1: ChaosSpec(mode="raise", times=1, marker_dir=marker, key="r"),
            2: ChaosSpec(mode="exit", times=1, marker_dir=marker, key="e"),
            4: ChaosSpec(
                mode="hang", times=1, marker_dir=marker, key="g",
                hang_seconds=300.0,
            ),
        }
        specs = [
            _spec(seed, chaos=chaos.get(index))
            for index, seed in enumerate(seeds)
        ]
        # First run survives raise + exit crashes, then is "killed"
        # (simulated by running only a prefix of the sweep).
        with SupervisedTrialExecutor(
            workers=2, trial_timeout=5.0, journal=journal_path
        ) as executor:
            executor.run_trials(specs[:3])
            assert executor.failures == []
        # Resume runs only the missing trials (one of them hangs once).
        with SupervisedTrialExecutor(
            workers=2, trial_timeout=5.0, journal=journal_path, resume=True
        ) as executor:
            resumed = executor.run_trials(specs)
            assert executor.failures == []
        serial = _serial(seeds)
        assert [r.trace_digest for r in resumed] == [
            r.trace_digest for r in serial
        ]
        for left, right in zip(resumed, serial):
            assert _fields(left) == _fields(right)


class TestGoldenDigestsSupervised:
    """The three pinned digests reproduce under --supervise machinery."""

    DURATION = 400.0

    def _pinned_spec(self, seed, *, percent_bad=0.0,
                     behavior=BadPongBehavior.DEAD, faults=None,
                     probe_retries=0) -> TrialSpec:
        return TrialSpec(
            system=SystemParams(
                network_size=100,
                percent_bad_peers=percent_bad,
                bad_pong_behavior=behavior,
            ),
            protocol=ProtocolParams(
                cache_size=30, probe_retries=probe_retries
            ),
            duration=self.DURATION,
            warmup=0.0,
            seed=seed,
            faults=faults,
            trace_hash=True,
        )

    def test_golden_digests_under_supervision(self):
        specs = [
            self._pinned_spec(7),
            self._pinned_spec(
                11, percent_bad=10.0, behavior=BadPongBehavior.BAD
            ),
            self._pinned_spec(
                7, faults=FaultPlan(loss_rate=0.05), probe_retries=2
            ),
        ]
        with SupervisedTrialExecutor(workers=2) as executor:
            reports = executor.run_trials(specs)
        assert [report.trace_digest for report in reports] == [
            "6433f3abe18fda0f316241089d67313b",
            "23d74325e25c2c9e44279d38a317edbe",
            "6433f3abe18fda0f316241089d67313b",
        ]


class TestManifestVerification:
    def _record_run(self, executor) -> dict:
        recorder = ManifestRecorder()
        with activated(recorder):
            run_guess_config(
                SYSTEM,
                PROTOCOL,
                duration=40.0,
                warmup=5.0,
                trials=2,
                base_seed=88,
                executor=executor,
            )
        return recorder.build(
            profile="smoke", suites=["x"], workers=2,
            wall_clock_seconds=0.0,
        )

    def test_journal_consistent_with_manifest(self, tmp_path):
        journal_path = str(tmp_path / "t.journal.jsonl")
        with SupervisedTrialExecutor(
            workers=2, journal=journal_path
        ) as executor:
            manifest = self._record_run(executor)
        journal = TrialJournal(journal_path, resume=True)
        try:
            assert len(journal) == 2
            assert verify_journal_against_manifest(journal, manifest) == []
        finally:
            journal.close()

    def test_contradicting_digest_detected(self, tmp_path):
        journal_path = str(tmp_path / "t.journal.jsonl")
        with SupervisedTrialExecutor(
            workers=2, journal=journal_path
        ) as executor:
            manifest = self._record_run(executor)
        manifest["configs"][0]["trace_digests"][0] = "0" * 32
        journal = TrialJournal(journal_path, resume=True)
        try:
            problems = verify_journal_against_manifest(journal, manifest)
        finally:
            journal.close()
        assert len(problems) == 1
        assert "contradicts" in problems[0]
