"""Micro-scale tests for the parameter-ablation producers."""

from __future__ import annotations

import pytest

from repro.experiments import ablations
from repro.experiments.profiles import Profile

MICRO = Profile(
    name="micro-param",
    duration=200.0,
    warmup=50.0,
    trials=1,
    network_sizes=(60,),
    reference_size=60,
    cache_sizes=(5,),
    ping_intervals=(15.0,),
    baseline_queries=50,
    max_extent=60,
)


class TestPongSizeAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_pong_size_ablation(MICRO)

    def test_shape(self, result):
        assert result.experiment_id == "ablation-pongsize"
        assert [row[0] for row in result.rows] == list(ablations.PONG_SIZES)

    def test_zero_sharing_starves_search(self, result):
        rows = {size: row for size, *row in result.rows}
        # Without pong sharing both reach (probes) and satisfaction
        # collapse relative to the spec's PongSize 5.
        assert rows[0][1] > rows[5][1]       # unsat worse
        assert rows[0][0] < rows[5][0]       # almost nobody left to probe

    def test_rates_valid(self, result):
        for _, probes, unsat, fraction in result.rows:
            assert probes >= 0
            assert 0.0 <= unsat <= 1.0
            assert 0.0 <= fraction <= 1.0


class TestIntroProbAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_intro_prob_ablation(MICRO)

    def test_shape(self, result):
        assert result.experiment_id == "ablation-introprob"
        assert [row[0] for row in result.rows] == list(ablations.INTRO_PROBS)

    def test_cache_fill_grows_with_introduction(self, result):
        rows = {p: row for p, *row in result.rows}
        assert rows[0.5][2] >= rows[0.0][2]

    def test_rates_valid(self, result):
        for _, probes, unsat, fill in result.rows:
            assert probes >= 0
            assert 0.0 <= unsat <= 1.0
            assert fill >= 0.0
