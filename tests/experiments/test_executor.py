"""Trial executor: serial/parallel equivalence and dispatch rules.

The executor's whole contract is that parallelism is invisible in the
results: seeds derive in the parent before dispatch, ``map`` preserves
submission order, and a report computed in a worker process equals the
one the same spec produces in-process.  These tests pin that contract
at a tiny scale (the digest-level equivalence of full runs is covered
by tests/integration/test_determinism.py).
"""

from __future__ import annotations

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ConfigError
from repro.core.params import ProtocolParams, SystemParams
from repro.experiments.executor import (
    ChaosSpec,
    ProcessTrialExecutor,
    SerialTrialExecutor,
    TrialSpec,
    execute_trial,
    get_executor,
)
from repro.experiments.runner import run_guess_config
from repro.experiments.supervisor import SupervisedTrialExecutor
from repro.observe.profiler import GLOBAL_PHASE, Profiler, activated

SYSTEM = SystemParams(network_size=30)
PROTOCOL = ProtocolParams(cache_size=8)
RUN_KWARGS = dict(duration=60.0, warmup=10.0, trials=3, base_seed=2024)


def _spec(seed: int) -> TrialSpec:
    return TrialSpec(
        system=SYSTEM,
        protocol=PROTOCOL,
        duration=40.0,
        warmup=5.0,
        seed=seed,
    )


def _report_fields(report) -> dict:
    return {key: repr(value) for key, value in vars(report).items()}


class TestGetExecutor:
    def test_default_is_serial(self):
        with get_executor(1) as executor:
            assert isinstance(executor, SerialTrialExecutor)
        with get_executor(None) as executor:
            assert isinstance(executor, SerialTrialExecutor)

    def test_positive_count_is_process_pool(self):
        with get_executor(2) as executor:
            assert isinstance(executor, ProcessTrialExecutor)
            assert executor.workers == 2

    def test_zero_means_one_per_cpu(self):
        with get_executor(0) as executor:
            assert isinstance(executor, ProcessTrialExecutor)
            assert executor.workers >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            get_executor(-1)


class TestMapOrder:
    def test_serial_preserves_order(self):
        with SerialTrialExecutor() as executor:
            assert executor.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_process_pool_preserves_order(self):
        with ProcessTrialExecutor(workers=2) as executor:
            assert executor.map(abs, [-5, 2, -1, 0, 7]) == [5, 2, 1, 0, 7]


class TestSerialParallelEquivalence:
    def test_single_trial_matches_inline(self):
        spec = _spec(seed=42)
        inline = execute_trial(spec)
        with ProcessTrialExecutor(workers=2) as executor:
            # Two specs force the pool path (1-item batches run inline).
            remote, remote_again = executor.run_trials([spec, spec])
        assert _report_fields(remote) == _report_fields(inline)
        assert _report_fields(remote_again) == _report_fields(inline)

    def test_run_guess_config_workers_equivalent(self):
        serial = run_guess_config(SYSTEM, PROTOCOL, workers=1, **RUN_KWARGS)
        parallel = run_guess_config(SYSTEM, PROTOCOL, workers=2, **RUN_KWARGS)
        assert len(serial) == len(parallel) == RUN_KWARGS["trials"]
        for left, right in zip(serial, parallel):
            assert _report_fields(left) == _report_fields(right)

    def test_trial_order_is_stable(self):
        # Trials differ (distinct derived seeds); order must match the
        # serial run's trial order, not completion order.
        serial = run_guess_config(SYSTEM, PROTOCOL, workers=1, **RUN_KWARGS)
        parallel = run_guess_config(SYSTEM, PROTOCOL, workers=3, **RUN_KWARGS)
        serial_queries = [report.queries for report in serial]
        parallel_queries = [report.queries for report in parallel]
        assert serial_queries == parallel_queries
        assert len(set(serial_queries)) > 1, "trials should not be identical"

    def test_shared_executor_reused_across_calls(self):
        with get_executor(2) as executor:
            first = run_guess_config(
                SYSTEM, PROTOCOL, executor=executor, **RUN_KWARGS
            )
            second = run_guess_config(
                SYSTEM, PROTOCOL, executor=executor, **RUN_KWARGS
            )
        assert _report_fields(first[0]) == _report_fields(second[0])


class TestPoolLifecycle:
    def test_single_item_batch_never_starts_pool(self):
        with ProcessTrialExecutor(workers=2) as executor:
            [report] = executor.run_trials([_spec(seed=5)])
            assert executor._pool is None
        assert _report_fields(report) == _report_fields(
            execute_trial(_spec(seed=5))
        )

    def test_exit_closes_pool_on_exception(self):
        executor = ProcessTrialExecutor(workers=2)
        with pytest.raises(RuntimeError, match="boom"):
            with executor:
                executor.map(abs, [-1, 2])
                assert executor._pool is not None
                raise RuntimeError("boom")
        assert executor._pool is None

    def test_close_is_idempotent(self):
        executor = ProcessTrialExecutor(workers=2)
        executor.map(abs, [-1, 2])
        executor.close()
        executor.close()
        assert executor._pool is None

    def test_broken_pool_is_discarded_and_respawned(self):
        # A worker dying mid-batch poisons the ProcessPoolExecutor; the
        # executor must surface the error, retire the dead pool, and
        # serve the next batch from a fresh one.
        crash = _spec(seed=6)
        crash = TrialSpec(
            system=crash.system,
            protocol=crash.protocol,
            duration=crash.duration,
            warmup=crash.warmup,
            seed=crash.seed,
            chaos=ChaosSpec(mode="exit"),
        )
        with ProcessTrialExecutor(workers=2) as executor:
            with pytest.raises(BrokenProcessPool):
                executor.run_trials([crash, _spec(seed=7)])
            assert executor._pool is None
            reports = executor.run_trials([_spec(seed=8), _spec(seed=9)])
        assert _report_fields(reports[0]) == _report_fields(
            execute_trial(_spec(seed=8))
        )

    def test_close_after_broken_pool_is_safe(self):
        crash = TrialSpec(
            system=SYSTEM,
            protocol=PROTOCOL,
            duration=40.0,
            warmup=5.0,
            seed=6,
            chaos=ChaosSpec(mode="exit"),
        )
        executor = ProcessTrialExecutor(workers=2)
        with pytest.raises(BrokenProcessPool):
            executor.run_trials([crash, _spec(seed=7)])
        executor.close()
        executor.close()


class TestProfilerBatches:
    def test_serial_executor_records_batch(self):
        profiler = Profiler()
        with activated(profiler):
            with SerialTrialExecutor() as executor:
                executor.map(abs, [-1, 2, -3])
        stats = profiler._stats[GLOBAL_PHASE]
        assert stats.batches == 1
        assert stats.batch_items == 3

    def test_process_executor_records_batch(self):
        profiler = Profiler()
        with activated(profiler):
            with ProcessTrialExecutor(workers=2) as executor:
                executor.map(abs, [-1, 2, -3])
        stats = profiler._stats[GLOBAL_PHASE]
        assert stats.batches == 1
        assert stats.batch_items == 3

    def test_supervised_executor_records_batch(self):
        profiler = Profiler()
        with activated(profiler):
            with SupervisedTrialExecutor(workers=2) as executor:
                executor.map(abs, [-1, 2, -3])
        stats = profiler._stats[GLOBAL_PHASE]
        assert stats.batches == 1
        assert stats.batch_items == 3


class TestMutateStaysInProcess:
    def test_mutate_ignores_workers(self):
        seen = []

        def mutate(sim):
            seen.append(sim.engine.now)

        reports = run_guess_config(
            SYSTEM,
            PROTOCOL,
            workers=4,
            mutate=mutate,
            **RUN_KWARGS,
        )
        # The hook ran in this process, once per trial.
        assert len(seen) == RUN_KWARGS["trials"]
        assert len(reports) == RUN_KWARGS["trials"]
