"""Trial executor: serial/parallel equivalence and dispatch rules.

The executor's whole contract is that parallelism is invisible in the
results: seeds derive in the parent before dispatch, ``map`` preserves
submission order, and a report computed in a worker process equals the
one the same spec produces in-process.  These tests pin that contract
at a tiny scale (the digest-level equivalence of full runs is covered
by tests/integration/test_determinism.py).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.core.params import ProtocolParams, SystemParams
from repro.experiments.executor import (
    ProcessTrialExecutor,
    SerialTrialExecutor,
    TrialSpec,
    execute_trial,
    get_executor,
)
from repro.experiments.runner import run_guess_config

SYSTEM = SystemParams(network_size=30)
PROTOCOL = ProtocolParams(cache_size=8)
RUN_KWARGS = dict(duration=60.0, warmup=10.0, trials=3, base_seed=2024)


def _spec(seed: int) -> TrialSpec:
    return TrialSpec(
        system=SYSTEM,
        protocol=PROTOCOL,
        duration=40.0,
        warmup=5.0,
        seed=seed,
    )


def _report_fields(report) -> dict:
    return {key: repr(value) for key, value in vars(report).items()}


class TestGetExecutor:
    def test_default_is_serial(self):
        with get_executor(1) as executor:
            assert isinstance(executor, SerialTrialExecutor)
        with get_executor(None) as executor:
            assert isinstance(executor, SerialTrialExecutor)

    def test_positive_count_is_process_pool(self):
        with get_executor(2) as executor:
            assert isinstance(executor, ProcessTrialExecutor)
            assert executor.workers == 2

    def test_zero_means_one_per_cpu(self):
        with get_executor(0) as executor:
            assert isinstance(executor, ProcessTrialExecutor)
            assert executor.workers >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            get_executor(-1)


class TestMapOrder:
    def test_serial_preserves_order(self):
        with SerialTrialExecutor() as executor:
            assert executor.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_process_pool_preserves_order(self):
        with ProcessTrialExecutor(workers=2) as executor:
            assert executor.map(abs, [-5, 2, -1, 0, 7]) == [5, 2, 1, 0, 7]


class TestSerialParallelEquivalence:
    def test_single_trial_matches_inline(self):
        spec = _spec(seed=42)
        inline = execute_trial(spec)
        with ProcessTrialExecutor(workers=2) as executor:
            # Two specs force the pool path (1-item batches run inline).
            remote, remote_again = executor.run_trials([spec, spec])
        assert _report_fields(remote) == _report_fields(inline)
        assert _report_fields(remote_again) == _report_fields(inline)

    def test_run_guess_config_workers_equivalent(self):
        serial = run_guess_config(SYSTEM, PROTOCOL, workers=1, **RUN_KWARGS)
        parallel = run_guess_config(SYSTEM, PROTOCOL, workers=2, **RUN_KWARGS)
        assert len(serial) == len(parallel) == RUN_KWARGS["trials"]
        for left, right in zip(serial, parallel):
            assert _report_fields(left) == _report_fields(right)

    def test_trial_order_is_stable(self):
        # Trials differ (distinct derived seeds); order must match the
        # serial run's trial order, not completion order.
        serial = run_guess_config(SYSTEM, PROTOCOL, workers=1, **RUN_KWARGS)
        parallel = run_guess_config(SYSTEM, PROTOCOL, workers=3, **RUN_KWARGS)
        serial_queries = [report.queries for report in serial]
        parallel_queries = [report.queries for report in parallel]
        assert serial_queries == parallel_queries
        assert len(set(serial_queries)) > 1, "trials should not be identical"

    def test_shared_executor_reused_across_calls(self):
        with get_executor(2) as executor:
            first = run_guess_config(
                SYSTEM, PROTOCOL, executor=executor, **RUN_KWARGS
            )
            second = run_guess_config(
                SYSTEM, PROTOCOL, executor=executor, **RUN_KWARGS
            )
        assert _report_fields(first[0]) == _report_fields(second[0])


class TestMutateStaysInProcess:
    def test_mutate_ignores_workers(self):
        seen = []

        def mutate(sim):
            seen.append(sim.engine.now)

        reports = run_guess_config(
            SYSTEM,
            PROTOCOL,
            workers=4,
            mutate=mutate,
            **RUN_KWARGS,
        )
        # The hook ran in this process, once per trial.
        assert len(seen) == RUN_KWARGS["trials"]
        assert len(reports) == RUN_KWARGS["trials"]
