"""End-to-end test of the run_all CLI entry point (tiny scope)."""

from __future__ import annotations

import json

from repro.experiments.run_all import main
from repro.experiments.supervisor import (
    JOURNAL_FILENAME,
    PARTIAL_MANIFEST_FILENAME,
)
from repro.observe.manifest import load_manifest, verify_manifest, write_manifest


def _digests(manifest: dict) -> list:
    return [entry["trace_digests"] for entry in manifest["configs"]]


class TestMain:
    def test_single_suite_with_output_file(self, tmp_path, capsys):
        output = tmp_path / "results.txt"
        code = main([
            "--profile", "smoke",
            "--only", "fig8",
            "--output", str(output),
            "--no-manifest",
        ])
        assert code == 0
        text = output.read_text()
        assert "fig8" in text
        assert "FixedExtent(Gnutella)" in text
        assert "total wall time" in text
        # Also printed to stdout.
        assert "fig8" in capsys.readouterr().out

    def test_suite_flag_is_an_only_alias(self, tmp_path, capsys):
        code = main([
            "--profile", "smoke",
            "--suite", "flexible_extent",
            "--manifest", str(tmp_path / "manifest.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- suite flexible_extent" in out
        assert "-- suite cache_size" not in out

    def test_unknown_experiment_exits(self):
        try:
            main(["--profile", "smoke", "--only", "fig99"])
            raised = False
        except SystemExit:
            raised = True
        assert raised

    def test_no_manifest_skips_writing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["--profile", "smoke", "--only", "fig8", "--no-manifest"])
        assert code == 0
        assert not (tmp_path / "manifest.json").exists()

    def test_manifest_written_and_verifiable(self, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        argv = [
            "--profile", "smoke",
            "--only", "loss_satisfaction",
            "--manifest", str(path),
        ]
        code = main(argv)
        assert code == 0
        assert f"manifest written to {path}" in capsys.readouterr().out

        manifest = load_manifest(path)
        assert manifest["profile"] == "smoke"
        assert manifest["suites"] == ["packet_loss"]
        # The exact re-launch command is recorded.
        assert manifest["command"] == [
            "python", "-m", "repro.experiments.run_all", *argv,
        ]
        assert manifest["configs"]
        for entry in manifest["configs"]:
            assert len(entry["trace_digests"]) == entry["trials"]
            assert all(entry["trace_digests"])
        # Acceptance check: the manifest reproduces bit for bit.
        assert verify_manifest(manifest) == []
        # And it is plain JSON all the way down.
        assert json.loads(json.dumps(manifest)) == manifest

    def test_supervised_run_matches_unsupervised(self, tmp_path, capsys):
        plain_manifest = tmp_path / "plain.json"
        code = main([
            "--profile", "smoke",
            "--only", "fig8",
            "--manifest", str(plain_manifest),
        ])
        assert code == 0
        supervised_manifest = tmp_path / "supervised.json"
        checkpoint = tmp_path / "ckpt"
        code = main([
            "--profile", "smoke",
            "--only", "fig8",
            "--workers", "2",
            "--supervise",
            "--checkpoint-dir", str(checkpoint),
            "--manifest", str(supervised_manifest),
        ])
        assert code == 0
        assert (checkpoint / JOURNAL_FILENAME).exists()
        capsys.readouterr()
        # Supervision is invisible in the results: digest-for-digest
        # identical to the plain run.
        assert _digests(load_manifest(supervised_manifest)) == _digests(
            load_manifest(plain_manifest)
        )

    def test_resume_serves_journaled_trials(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt"
        fresh_manifest = tmp_path / "fresh.json"
        code = main([
            "--profile", "smoke",
            "--only", "fig8",
            "--supervise",
            "--checkpoint-dir", str(checkpoint),
            "--manifest", str(fresh_manifest),
        ])
        assert code == 0
        capsys.readouterr()
        resumed_manifest = tmp_path / "resumed.json"
        code = main([
            "--profile", "smoke",
            "--only", "fig8",
            "--resume", str(checkpoint),
            "--manifest", str(resumed_manifest),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"resuming from {checkpoint}" in out
        assert _digests(load_manifest(resumed_manifest)) == _digests(
            load_manifest(fresh_manifest)
        )

    def test_resume_refuses_contradicting_partial_manifest(
        self, tmp_path, capsys
    ):
        checkpoint = tmp_path / "ckpt"
        manifest_path = tmp_path / "m.json"
        code = main([
            "--profile", "smoke",
            "--only", "fig8",
            "--supervise",
            "--checkpoint-dir", str(checkpoint),
            "--manifest", str(manifest_path),
        ])
        assert code == 0
        capsys.readouterr()
        manifest = load_manifest(manifest_path)
        manifest["configs"][0]["trace_digests"][0] = "0" * 32
        write_manifest(checkpoint / PARTIAL_MANIFEST_FILENAME, manifest)
        code = main([
            "--profile", "smoke",
            "--only", "fig8",
            "--resume", str(checkpoint),
        ])
        assert code == 2
        assert "refusing to resume" in capsys.readouterr().err

    def test_profile_report_appended(self, tmp_path, capsys):
        code = main([
            "--profile", "smoke",
            "--only", "fig8",
            "--manifest", str(tmp_path / "manifest.json"),
            "--profile-report",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "profile report" in out
        assert "events/s" in out
        assert "flexible_extent" in out
