"""End-to-end test of the run_all CLI entry point (tiny scope)."""

from __future__ import annotations

from repro.experiments.run_all import main


class TestMain:
    def test_single_suite_with_output_file(self, tmp_path, capsys):
        output = tmp_path / "results.txt"
        code = main([
            "--profile", "smoke",
            "--only", "fig8",
            "--output", str(output),
        ])
        assert code == 0
        text = output.read_text()
        assert "fig8" in text
        assert "FixedExtent(Gnutella)" in text
        assert "total wall time" in text
        # Also printed to stdout.
        assert "fig8" in capsys.readouterr().out

    def test_suite_flag_is_an_only_alias(self, capsys):
        code = main([
            "--profile", "smoke",
            "--suite", "flexible_extent",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- suite flexible_extent" in out
        assert "-- suite cache_size" not in out

    def test_unknown_experiment_exits(self):
        try:
            main(["--profile", "smoke", "--only", "fig99"])
            raised = False
        except SystemExit:
            raised = True
        assert raised
