"""Tests for the run_all CLI plumbing."""

from __future__ import annotations

import pytest

from repro.experiments.run_all import (
    EXPERIMENT_SUITE,
    SUITES,
    resolve_suites,
)


class TestResolveSuites:
    def test_default_is_everything(self):
        assert resolve_suites(None) == list(SUITES)
        assert resolve_suites([]) == list(SUITES)

    def test_suite_name_passthrough(self):
        assert resolve_suites(["fairness"]) == ["fairness"]

    def test_experiment_id_maps_to_suite(self):
        assert resolve_suites(["fig8"]) == ["flexible_extent"]
        assert resolve_suites(["table3"]) == ["cache_size"]

    def test_duplicates_collapse(self):
        assert resolve_suites(["fig3", "fig4", "cache_size"]) == ["cache_size"]

    def test_order_preserved(self):
        assert resolve_suites(["fig13", "fig8"]) == [
            "fairness", "flexible_extent",
        ]

    def test_unknown_token_exits(self):
        with pytest.raises(SystemExit):
            resolve_suites(["fig99"])


class TestCoverage:
    def test_every_paper_artifact_mapped(self):
        paper = {"table3"} | {f"fig{i}" for i in range(3, 22)}
        beyond_paper = {
            "loss_grid",
            "loss_satisfaction",
            "storm_grid",
            "storm_recovery",
            "gossip_compare",
            "gossip_faulty",
            "freshness_grid",
            "freshness_recovery",
        }
        assert set(EXPERIMENT_SUITE) == paper | beyond_paper

    def test_all_mapped_suites_exist(self):
        assert set(EXPERIMENT_SUITE.values()) <= set(SUITES)

    def test_packet_loss_ids_map_to_packet_loss(self):
        assert resolve_suites(["loss_grid"]) == ["packet_loss"]
        assert resolve_suites(["loss_satisfaction"]) == ["packet_loss"]

    def test_storm_ids_map_to_churn_storm(self):
        assert resolve_suites(["storm_grid"]) == ["churn_storm"]
        assert resolve_suites(["storm_recovery"]) == ["churn_storm"]

    def test_freshness_ids_map_to_cache_freshness(self):
        assert resolve_suites(["freshness_grid"]) == ["cache_freshness"]
        assert resolve_suites(["freshness_recovery"]) == ["cache_freshness"]
