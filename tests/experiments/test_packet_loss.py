"""Tests for the packet-loss robustness suite.

Covers the suite's three contracts: the grid is complete and reports
spurious timeouts separately from true dead probes; the fault-free cell
reproduces the policy-comparison Random baseline (same seed, same
numbers); and a parallel run is byte-identical to a serial one even
with faults injected.
"""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.experiments import packet_loss, policy_comparison
from repro.experiments.profiles import Profile
from repro.experiments.runner import ExperimentResult

MICRO = Profile(
    name="micro",
    duration=120.0,
    warmup=30.0,
    trials=1,
    network_sizes=(60,),
    reference_size=60,
    cache_sizes=(5, 20),
    ping_intervals=(15.0, 120.0),
    baseline_queries=60,
    max_extent=60,
)


def grid_cells(grid: ExperimentResult) -> dict:
    return {(row[0], row[1]): row for row in grid.rows}


class TestSuiteShape:
    @pytest.fixture(scope="class")
    def results(self):
        return packet_loss.run_suite(MICRO)

    def test_ids(self, results):
        assert [r.experiment_id for r in results] == [
            "loss_grid", "loss_satisfaction",
        ]

    def test_grid_complete(self, results):
        cells = grid_cells(results[0])
        assert set(cells) == {
            (loss, retries)
            for loss in packet_loss.LOSS_RATES
            for retries in packet_loss.RETRY_BUDGETS
        }

    def test_columns_separate_spurious_from_dead(self, results):
        columns = results[0].columns
        assert "DeadIPs/Query" in columns
        assert "Spurious/Query" in columns

    def test_satisfaction_series_per_budget(self, results):
        series = results[1].series
        assert set(series) == {
            f"retries={r}" for r in packet_loss.RETRY_BUDGETS
        }
        for points in series.values():
            assert [x for x, _ in points] == list(packet_loss.LOSS_RATES)

    def test_fault_free_cells_have_no_fault_artifacts(self, results):
        cells = grid_cells(results[0])
        for retries in packet_loss.RETRY_BUDGETS:
            row = cells[(0.0, retries)]
            _, _, satisfied, _, _, _, spurious, _, _, wrongful = row
            assert spurious == 0.0
            assert wrongful == 0.0
            assert 0.0 <= satisfied <= 1.0

    def test_loss_inflates_spurious_timeouts(self, results):
        cells = grid_cells(results[0])
        lossy = cells[(0.20, 0)]
        spurious, dead = lossy[6], lossy[5]
        assert spurious > 0.0
        # Spurious timeouts are a subset of the DeadIPs the prober sees.
        assert spurious <= dead
        assert lossy[9] > 0.0  # wrongful evictions of live entries

    def test_retries_recover_spurious_timeouts(self, results):
        cells = grid_cells(results[0])
        without = cells[(0.20, 0)]
        with_retry = cells[(0.20, 2)]
        assert with_retry[5] < without[5]  # fewer apparent dead probes
        assert 0.0 < with_retry[7] <= 1.0  # recovery rate measured
        assert without[7] == 0.0  # no retries, nothing recovered
        assert with_retry[2] >= without[2]  # satisfaction not worse


class TestBaselineAnchor:
    def test_fault_free_cell_reproduces_fig9_random_numbers(self):
        """loss=0, retries=0 shares seed 0x909 and the default protocol
        with the fig9 Random cell — the numbers must match exactly."""
        cell = packet_loss._measure_cell(MICRO, 0.0, 0)
        baseline = policy_comparison._measure(
            MICRO, ProtocolParams(), packet_loss.BASE_SEED
        )
        assert cell["probes"] == baseline["total"]
        assert cell["dead"] == baseline["dead"]
        assert cell["satisfied"] == pytest.approx(1.0 - baseline["unsat"])


class TestParallelEquality:
    def test_workers_2_report_is_byte_identical_to_serial(self):
        serial = packet_loss.run_suite(MICRO, workers=1)
        parallel = packet_loss.run_suite(MICRO, workers=2)
        assert [r.render() for r in serial] == [
            r.render() for r in parallel
        ]


class TestCli:
    def canned(self, tag):
        return [
            ExperimentResult(
                experiment_id="loss_grid",
                title=f"canned {tag}",
                columns=("A",),
                rows=((1.0,),),
            )
        ]

    def test_verify_parallel_passes_on_identical_reports(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            packet_loss, "run_suite", lambda profile, workers=1, **kw: self.canned("x")
        )
        assert packet_loss.main(
            ["--profile", "smoke", "--workers", "2", "--verify-parallel"]
        ) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out

    def test_verify_parallel_fails_on_divergent_reports(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            packet_loss,
            "run_suite",
            lambda profile, workers=1, **kw: self.canned(f"workers={workers}"),
        )
        assert packet_loss.main(
            ["--profile", "smoke", "--workers", "2", "--verify-parallel"]
        ) == 1
        assert "differ" in capsys.readouterr().err

    def test_verify_parallel_requires_workers(self):
        with pytest.raises(SystemExit):
            packet_loss.main(["--verify-parallel"])

    def test_output_file_written(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            packet_loss, "run_suite", lambda profile, workers=1, **kw: self.canned("x")
        )
        target = tmp_path / "loss.txt"
        assert packet_loss.main(["--output", str(target)]) == 0
        assert "canned x" in target.read_text()
