"""Tests for the churn-storm resilience suite.

Covers the suite's contracts: the grid is complete and the mechanism
counters behave (mechanisms off ⇒ no suppressions/denials/shedding;
mechanisms on ⇒ breakers fully replace refusal-driven eviction); the
headline claim — at equal seed, arming the resilience layer strictly
improves both time-to-recovery and results/query for the pinned storm
cell; and a parallel run is byte-identical to a serial one with storms
active.
"""

from __future__ import annotations

import pytest

from repro.experiments import churn_storm
from repro.experiments.profiles import Profile, get_profile
from repro.experiments.runner import ExperimentResult

MICRO = Profile(
    name="micro",
    duration=120.0,
    warmup=30.0,
    trials=1,
    network_sizes=(60,),
    reference_size=60,
    cache_sizes=(5, 20),
    ping_intervals=(15.0, 120.0),
    baseline_queries=60,
    max_extent=60,
)


def grid_cells(grid: ExperimentResult) -> dict:
    return {(row[0], row[1]): row for row in grid.rows}


class TestSuiteShape:
    @pytest.fixture(scope="class")
    def results(self):
        return churn_storm.run_suite(MICRO)

    def test_ids(self, results):
        assert [r.experiment_id for r in results] == [
            "storm_grid", "storm_recovery",
        ]

    def test_grid_complete(self, results):
        cells = grid_cells(results[0])
        assert set(cells) == {
            (fraction, mechanisms)
            for fraction in churn_storm.STORM_FRACTIONS
            for mechanisms in ("off", "on")
        }

    def test_columns_split_evictions_by_cause(self, results):
        columns = results[0].columns
        assert "RefusalEvict" in columns
        assert "DeadEvict" in columns

    def test_recovery_series_per_mechanisms_setting(self, results):
        series = results[1].series
        assert set(series) == {"mechanisms=off", "mechanisms=on"}
        for points in series.values():
            assert [x for x, _ in points] == list(
                churn_storm.STORM_FRACTIONS
            )

    def test_mechanisms_off_cells_have_no_mechanism_artifacts(
        self, results
    ):
        cells = grid_cells(results[0])
        for fraction in churn_storm.STORM_FRACTIONS:
            row = cells[(fraction, "off")]
            _, _, satisfied, _, _, _, suppressed, denied, shed, _ = row
            assert suppressed == 0.0
            assert denied == 0.0
            assert shed == 0.0
            assert 0.0 <= satisfied <= 1.0

    def test_breaker_replaces_refusal_eviction(self, results):
        cells = grid_cells(results[0])
        for fraction in churn_storm.STORM_FRACTIONS:
            # Armed: the breaker absorbs every refusal, so the
            # do_backoff=False eviction reflex never fires.
            assert cells[(fraction, "on")][4] == 0.0

    def test_storm_kills_are_visible_as_dead_evictions(self, results):
        cells = grid_cells(results[0])
        small = cells[(churn_storm.STORM_FRACTIONS[0], "off")][5]
        large = cells[(churn_storm.STORM_FRACTIONS[-1], "off")][5]
        assert small > 0.0
        assert large > small


class TestMechanismsImprove:
    """The headline pin: resilience strictly improves the storm cell.

    Both cells share base seed, scenario plan, and workload; only the
    per-peer mechanisms differ.  At the smoke profile the fraction-0.5
    cell must show a strictly shorter time-to-recovery *and* strictly
    more results per query with the mechanisms armed.
    """

    FRACTION = 0.5

    @pytest.fixture(scope="class")
    def cells(self):
        profile = get_profile("smoke")
        return (
            churn_storm._measure_cell(profile, self.FRACTION, False),
            churn_storm._measure_cell(profile, self.FRACTION, True),
        )

    def test_recovery_strictly_improves(self, cells):
        off, on = cells
        assert on["recovery"] < off["recovery"]

    def test_results_per_query_strictly_improves(self, cells):
        off, on = cells
        assert on["results"] > off["results"]

    def test_improvement_is_attributable(self, cells):
        off, on = cells
        # The off cell evicts on refusal; the on cell never does, and
        # its budget/shedding counters show the mechanisms actually ran.
        assert off["refusal_evict"] > 0.0
        assert on["refusal_evict"] == 0.0
        assert on["denied"] > 0.0
        assert on["shed"] > 0.0


class TestParallelEquality:
    def test_workers_2_report_is_byte_identical_to_serial(self):
        serial = churn_storm.run_suite(MICRO, workers=1)
        parallel = churn_storm.run_suite(MICRO, workers=2)
        assert [r.render() for r in serial] == [
            r.render() for r in parallel
        ]


class TestCli:
    def canned(self, tag):
        return [
            ExperimentResult(
                experiment_id="storm_grid",
                title=f"canned {tag}",
                columns=("A",),
                rows=((1.0,),),
            )
        ]

    def test_verify_parallel_passes_on_identical_reports(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            churn_storm,
            "run_suite",
            lambda profile, workers=1, **kw: self.canned("x"),
        )
        assert churn_storm.main(
            ["--profile", "smoke", "--workers", "2", "--verify-parallel"]
        ) == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_verify_parallel_fails_on_divergent_reports(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            churn_storm,
            "run_suite",
            lambda profile, workers=1, **kw: self.canned(
                f"workers={workers}"
            ),
        )
        assert churn_storm.main(
            ["--profile", "smoke", "--workers", "2", "--verify-parallel"]
        ) == 1
        assert "differ" in capsys.readouterr().err

    def test_verify_parallel_requires_workers(self):
        with pytest.raises(SystemExit):
            churn_storm.main(["--verify-parallel"])

    def test_output_file_written(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            churn_storm,
            "run_suite",
            lambda profile, workers=1, **kw: self.canned("x"),
        )
        target = tmp_path / "storm.txt"
        assert churn_storm.main(["--output", str(target)]) == 0
        assert "canned x" in target.read_text()
