"""Tests for profiles, the config runner, and result rendering."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams, SystemParams
from repro.errors import ConfigError
from repro.experiments.profiles import PROFILES, Profile, get_profile
from repro.experiments.runner import (
    ExperimentResult,
    averaged,
    run_guess_config,
)


class TestProfiles:
    def test_registry_names(self):
        assert set(PROFILES) == {"smoke", "quick", "report", "full"}
        for name, profile in PROFILES.items():
            assert profile.name == name

    def test_get_profile(self):
        assert get_profile("smoke").name == "smoke"

    def test_unknown_profile(self):
        with pytest.raises(ConfigError):
            get_profile("nope")

    def test_total_time(self):
        profile = get_profile("smoke")
        assert profile.total_time == profile.duration + profile.warmup

    def test_scales_ordered(self):
        smoke, quick, full = (
            get_profile("smoke"), get_profile("quick"), get_profile("full"),
        )
        assert smoke.duration < quick.duration <= full.duration
        assert max(smoke.network_sizes) < max(full.network_sizes)

    def test_validation(self):
        with pytest.raises(ConfigError):
            Profile(
                name="x", duration=0.0, warmup=0.0, trials=1,
                network_sizes=(10,), reference_size=10,
                cache_sizes=(5,), ping_intervals=(10.0,),
                baseline_queries=10, max_extent=10,
            )


class TestRunGuessConfig:
    def test_returns_one_report_per_trial(self):
        reports = run_guess_config(
            SystemParams(network_size=40, query_rate=0.02),
            ProtocolParams(cache_size=8),
            duration=150.0,
            warmup=50.0,
            trials=2,
        )
        assert len(reports) == 2
        assert all(r.queries > 0 for r in reports)

    def test_trials_use_distinct_seeds(self):
        reports = run_guess_config(
            SystemParams(network_size=40, query_rate=0.02),
            ProtocolParams(cache_size=8),
            duration=150.0,
            warmup=0.0,
            trials=2,
        )
        assert reports[0].total_probes != reports[1].total_probes

    def test_base_seed_reproducible(self):
        runs = [
            run_guess_config(
                SystemParams(network_size=40, query_rate=0.02),
                ProtocolParams(cache_size=8),
                duration=100.0,
                warmup=0.0,
                base_seed=5,
            )[0].total_probes
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_mutate_hook_called(self):
        seen = []
        run_guess_config(
            SystemParams(network_size=40, query_rate=0.0),
            ProtocolParams(cache_size=8),
            duration=10.0,
            warmup=0.0,
            mutate=lambda sim: seen.append(sim.system.network_size),
        )
        assert seen == [40]

    def test_averaged(self):
        reports = run_guess_config(
            SystemParams(network_size=40, query_rate=0.02),
            ProtocolParams(cache_size=8),
            duration=150.0,
            warmup=0.0,
            trials=2,
        )
        value = averaged(reports, "probes_per_query")
        individual = [r.probes_per_query for r in reports]
        assert min(individual) <= value <= max(individual)


class TestExperimentResult:
    def test_render_table(self):
        result = ExperimentResult(
            experiment_id="t", title="Title",
            columns=("a", "b"), rows=((1, 2),),
        )
        text = result.render()
        assert "== t: Title ==" in text
        assert "| a | b |" in text

    def test_render_series(self):
        result = ExperimentResult(
            experiment_id="f", title="Fig",
            series={"s": [(1.0, 2.0)]}, x_label="x",
        )
        assert "s" in result.render()

    def test_render_notes(self):
        result = ExperimentResult(
            experiment_id="f", title="Fig", notes="shape note"
        )
        assert "expected shape: shape note" in result.render()
