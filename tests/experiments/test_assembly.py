"""Tests for experiment result assembly (no simulations).

The cache-size and capacity experiment modules accept precomputed sweep
dictionaries, so their table/series assembly logic can be verified
instantly with synthetic sweeps.
"""

from __future__ import annotations

import pytest

from repro.experiments import cache_size, capacity
from repro.experiments.profiles import Profile

PROFILE = Profile(
    name="assembly",
    duration=1.0,
    warmup=0.0,
    trials=1,
    network_sizes=(100, 200),
    reference_size=200,
    cache_sizes=(10, 20),
    ping_intervals=(10.0,),
    baseline_queries=10,
    max_extent=10,
)


def cache_cell(probes, unsat, dead=1.0, good=None, fraction=0.5, absolute=5.0):
    good = probes - dead if good is None else good
    return {
        "probes_per_query": probes,
        "good_per_query": good,
        "dead_per_query": dead,
        "unsatisfied": unsat,
        "fraction_live": fraction,
        "absolute_live": absolute,
        "cache_fill": 10.0,
    }


@pytest.fixture
def cache_sweep():
    return {
        (100, 10): cache_cell(20.0, 0.10),
        (100, 20): cache_cell(30.0, 0.08),
        (200, 10): cache_cell(25.0, 0.12, fraction=0.8, absolute=8.0),
        (200, 20): cache_cell(40.0, 0.09, fraction=0.6, absolute=12.0),
    }


class TestCacheSizeAssembly:
    def test_fig3_series_grouped_by_network(self, cache_sweep):
        result = cache_size.run_fig3(PROFILE, cache_sweep)
        assert set(result.series) == {"N=100", "N=200"}
        assert result.series["N=100"] == [(10, 20.0), (20, 30.0)]

    def test_fig4_uses_unsat_metric(self, cache_sweep):
        result = cache_size.run_fig4(PROFILE, cache_sweep)
        assert result.series["N=200"] == [(10, 0.12), (20, 0.09)]

    def test_fig5_uses_reference_size_only(self, cache_sweep):
        result = cache_size.run_fig5(PROFILE, cache_sweep)
        assert result.series["Dead"] == [(10, 1.0), (20, 1.0)]
        assert result.series["Good"] == [(10, 24.0), (20, 39.0)]

    def test_table3_rows_from_reference_size(self, cache_sweep):
        result = cache_size.run_table3(PROFILE, cache_sweep)
        assert result.rows == ((10, 0.8, 8.0), (20, 0.6, 12.0))

    def test_table3_skips_missing_cells(self):
        result = cache_size.run_table3(PROFILE, {(200, 10): cache_cell(1, 0.1)})
        assert len(result.rows) == 1

    def test_hash_seed_stable_and_distinct(self):
        assert cache_size.hash_seed(100, 10) == cache_size.hash_seed(100, 10)
        assert cache_size.hash_seed(100, 10) != cache_size.hash_seed(100, 20)
        assert cache_size.hash_seed(100, 10) != cache_size.hash_seed(200, 10)


@pytest.fixture
def capacity_sweep():
    cells = {}
    for n in (100, 200):
        for cap in (50, 1):
            cells[(n, cap)] = {
                "good": 10.0,
                "refused": 0.5 if cap == 1 else 0.0,
                "dead": 1.0,
                "unsat": 0.1,
            }
    return cells


class TestCapacityAssembly:
    def test_fig14_rows_ordered_by_size_then_capacity_desc(self, capacity_sweep):
        result = capacity.run_fig14(PROFILE, capacity_sweep)
        keys = [(row[0], row[1]) for row in result.rows]
        assert keys == [(100, 50), (100, 1), (200, 50), (200, 1)]

    def test_fig14_columns(self, capacity_sweep):
        result = capacity.run_fig14(PROFILE, capacity_sweep)
        assert result.columns[2:] == (
            "Good/Query", "Refused/Query", "DeadIPs/Query",
        )

    def test_fig15_series_per_network(self, capacity_sweep):
        result = capacity.run_fig15(PROFILE, capacity_sweep)
        assert set(result.series) == {"N=100", "N=200"}
        for points in result.series.values():
            assert [x for x, _ in points] == [1.0, 50.0]
