"""Micro-scale tests for the ablation experiment producers.

The detection ablation runs a fixed 900-simulated-second attack and is
exercised by its benchmark; the cheaper producers are validated here.
"""

from __future__ import annotations

import pytest

from repro.experiments import ablations
from repro.experiments.profiles import Profile

MICRO = Profile(
    name="micro-ablate",
    duration=150.0,
    warmup=50.0,
    trials=1,
    network_sizes=(60,),
    reference_size=60,
    cache_sizes=(5, 20),
    ping_intervals=(15.0,),
    baseline_queries=60,
    max_extent=60,
)


class TestParallelAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_parallel_ablation(MICRO)

    def test_shape(self, result):
        assert result.experiment_id == "ablation-parallel"
        assert [row[0] for row in result.rows] == list(
            ablations.PARALLEL_WALKERS
        )

    def test_response_time_improves_with_k(self, result):
        rows = {k: row for k, *row in result.rows}
        assert rows[10][2] < rows[1][2]

    def test_probe_overhead_bounded(self, result):
        rows = {k: row for k, *row in result.rows}
        # Overhead per query is at most ~k-1 probes (plus noise).
        assert rows[10][0] <= rows[1][0] + 10 + 2


class TestBackoffAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_backoff_ablation(MICRO)

    def test_shape(self, result):
        assert result.experiment_id == "ablation-backoff"
        assert [row[0] for row in result.rows] == [False, True]

    def test_valid_rates(self, result):
        for _, _, refused, unsat in result.rows:
            assert refused >= 0.0
            assert 0.0 <= unsat <= 1.0


class TestAdaptiveSearchAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_adaptive_search_ablation(MICRO)

    def test_shape(self, result):
        assert result.experiment_id == "ablation-adaptive-search"
        assert {row[0] for row in result.rows} == {
            "serial (k=1)", "fixed k=10", "adaptive",
        }

    def test_adaptive_between_serial_and_fixed(self, result):
        rows = {label: row for label, *row in result.rows}
        assert rows["adaptive"][0] <= rows["fixed k=10"][0] + 1.0
