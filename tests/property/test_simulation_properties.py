"""Property-based tests over whole simulation runs.

Hypothesis drives small random configurations through short runs and
checks the invariants that must hold for *any* configuration:

* the live population equals NetworkSize at all times;
* no link cache exceeds its capacity or contains its owner;
* probe accounting adds up (good + dead + refused == total);
* rates are probabilities; loads are non-negative.

Scale is kept tiny (<= 50 peers, <= 300 simulated seconds) so the whole
module stays in seconds.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network_sim import GuessSimulation
from repro.core.params import BadPongBehavior, ProtocolParams, SystemParams

ordering_policies = st.sampled_from(["Random", "MRU", "LRU", "MFS", "MR", "MR*"])
replacement_policies = st.sampled_from(["Random", "LRU", "MRU", "LFS", "LR"])

system_strategy = st.builds(
    SystemParams,
    network_size=st.integers(min_value=10, max_value=50),
    num_desired_results=st.integers(min_value=1, max_value=2),
    lifespan_multiplier=st.sampled_from([0.05, 0.2, 1.0]),
    query_rate=st.sampled_from([0.0, 0.02, 0.1]),
    max_probes_per_second=st.sampled_from([None, 2, 100]),
    percent_bad_peers=st.sampled_from([0.0, 10.0, 30.0]),
    bad_pong_behavior=st.sampled_from(list(BadPongBehavior)),
)

protocol_strategy = st.builds(
    ProtocolParams,
    query_probe=ordering_policies,
    query_pong=ordering_policies,
    ping_probe=ordering_policies,
    ping_pong=ordering_policies,
    cache_replacement=replacement_policies,
    ping_interval=st.sampled_from([5.0, 30.0, 120.0]),
    cache_size=st.integers(min_value=2, max_value=30),
    do_backoff=st.booleans(),
    pong_size=st.integers(min_value=0, max_value=8),
    intro_prob=st.sampled_from([0.0, 0.1, 1.0]),
    parallel_probes=st.sampled_from([1, 3]),
)


@given(system_strategy, protocol_strategy, st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_simulation_invariants(system, protocol, seed):
    sim = GuessSimulation(system, protocol, seed=seed, warmup=0.0)
    sim.run(300.0)

    # Population invariant.
    assert len(sim.live_peers) == system.network_size

    # Cache invariants.
    for peer in sim.live_peers:
        assert len(peer.link_cache) <= protocol.cache_size
        assert peer.address not in peer.link_cache
        addresses = list(peer.link_cache.addresses())
        assert len(addresses) == len(set(addresses))

    report = sim.report()
    # Probe accounting.
    assert (
        report.good_probes + report.dead_probes + report.refused_probes
        == report.total_probes
    )
    assert report.satisfied_queries <= report.queries
    assert 0.0 <= report.unsatisfied_rate <= 1.0
    assert 0.0 <= report.wasted_probe_fraction <= 1.0
    # Loads cover everyone who ever lived, with non-negative counts.
    assert all(load >= 0 for load in report.loads.values())
    assert len(report.loads) == system.network_size + report.births
    # Churn bookkeeping.
    assert report.births == report.deaths


@given(
    st.integers(min_value=10, max_value=40),
    st.integers(min_value=2, max_value=20),
    st.integers(0, 2**31),
)
@settings(max_examples=15, deadline=None)
def test_overlay_snapshot_consistency(network_size, cache_size, seed):
    """Snapshot edges only mention live peers; LCC <= population."""
    sim = GuessSimulation(
        SystemParams(network_size=network_size, query_rate=0.05,
                     lifespan_multiplier=0.2),
        ProtocolParams(cache_size=cache_size),
        seed=seed,
    )
    sim.run(200.0)
    snapshot = sim.snapshot_overlay()
    assert snapshot.live == {p.address for p in sim.live_peers}
    for owner, targets in snapshot.edges.items():
        assert owner in snapshot.live
        assert set(targets) <= snapshot.live
    assert 0 < snapshot.largest_component_size() <= network_size
