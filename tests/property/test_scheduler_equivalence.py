"""Heap-vs-wheel equivalence: identical fired sequences, always.

The timing wheel's whole contract is that it is *indistinguishable*
from the reference heap — same events, same order, bit for bit.  The
golden-digest pins prove it for three specific protocol runs; these
properties prove it for adversarial schedules hypothesis invents:
same-tick ties, float bucket boundaries, far-future overflow times,
mid-run cancellations, and events that schedule more events (including
at the current instant, the incursion-heap path).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.wheel import TimingWheel

#: Mixes sub-tick floats, exact bucket boundaries (multiples of 0.1 and
#: 1.0 stress float non-distributivity in the wheel geometry), and
#: far-future times that exercise the overflow heap.
times = st.one_of(
    st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    st.integers(min_value=0, max_value=80).map(lambda i: i * 0.1),
    st.integers(min_value=0, max_value=50).map(float),
    st.floats(min_value=1e3, max_value=1e7, allow_nan=False),
)
priorities = st.sampled_from(list(EventPriority))

#: One scheduled event: (time, priority, cancel it before it fires?).
events = st.tuples(times, priorities, st.booleans())


def run_schedule(scheduler, schedule, followups):
    """Fire a schedule on one engine; returns the (time, prio, seq) log.

    ``followups`` drives the dynamic part: event *i* reschedules itself
    ``followups[i] % 3`` times at deterministic offsets, including 0.0
    (the same-instant case served by the wheel's incursion heap).
    """
    sim = Simulator(scheduler=scheduler)
    fired = []

    def make_action(index, depth):
        def action():
            fired.append((sim.now, index, depth))
            extra = followups[index % len(followups)] % 3 if followups else 0
            if depth < extra:
                offset = (0.0, 0.25, 17.0)[depth]
                sim.schedule(
                    sim.now + offset,
                    make_action(index, depth + 1),
                    priority=EventPriority(
                        list(EventPriority)[index % len(EventPriority)]
                    ),
                )
        return action

    for index, (time, priority, cancel) in enumerate(schedule):
        handle = sim.schedule(time, make_action(index, 0), priority=priority)
        if cancel:
            handle.cancel()
    sim.run_until(math.inf)
    return fired


@given(
    st.lists(events, max_size=50),
    st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=8),
)
@settings(max_examples=80, deadline=None)
def test_wheel_fires_identical_sequence_to_heap(schedule, followups):
    assert run_schedule("heap", schedule, followups) == run_schedule(
        "wheel", schedule, followups
    )


@given(st.lists(events, max_size=60))
@settings(max_examples=80, deadline=None)
def test_static_schedules_identical_without_followups(schedule):
    assert run_schedule("heap", schedule, []) == run_schedule(
        "wheel", schedule, []
    )


@given(
    st.lists(events, max_size=40),
    st.floats(min_value=0.01, max_value=3.0, allow_nan=False),
    st.integers(min_value=1, max_value=32),
)
@settings(max_examples=60, deadline=None)
def test_equivalence_holds_for_any_wheel_geometry(schedule, tick, slots):
    """Tiny rings and awkward ticks force constant overflow migration
    and slot aliasing; the fired sequence must still match the heap."""
    wheel = TimingWheel(tick=tick, slots=slots)
    assert run_schedule("heap", schedule, []) == run_schedule(
        wheel, schedule, []
    )


@given(st.lists(st.tuples(times, st.booleans()), max_size=50))
@settings(max_examples=60, deadline=None)
def test_cancellation_equivalence(schedule):
    """Cancel-heavy schedules (compaction territory) stay equivalent."""
    logs = []
    for scheduler in ("heap", "wheel"):
        sim = Simulator(scheduler=scheduler)
        fired = []
        for index, (time, cancel) in enumerate(schedule):
            handle = sim.schedule(time, lambda i=index: fired.append(i))
            if cancel:
                handle.cancel()
        sim.run_until(math.inf)
        logs.append(fired)
    assert logs[0] == logs[1]
