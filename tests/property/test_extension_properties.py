"""Property-based tests for the extension components."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.adaptive_ping import AdaptivePingController
from repro.extensions.detection import DefenseConfig, PongDefense
from repro.extensions.selfish import ProbeBudget


@given(
    st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
    st.lists(st.booleans(), max_size=200),
)
@settings(max_examples=100)
def test_adaptive_ping_interval_stays_in_band(initial, outcomes):
    """Whatever the probe-outcome stream, the interval stays clamped."""
    controller = AdaptivePingController(
        initial, min_interval=5.0, max_interval=600.0, window=7
    )
    for dead in outcomes:
        controller.observe(dead=dead)
        assert 5.0 <= controller.interval <= 600.0


@given(st.lists(st.booleans(), min_size=1, max_size=100))
@settings(max_examples=100)
def test_adaptive_ping_all_dead_never_relaxes(pattern):
    """A 100%-dead stream can only tighten (or hold) the interval."""
    controller = AdaptivePingController(120.0, window=5)
    previous = controller.interval
    for _ in pattern:
        controller.observe(dead=True)
        assert controller.interval <= previous
        previous = controller.interval


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=20),   # source
            st.integers(min_value=100, max_value=140),  # entry address
            st.sampled_from(["dead", "barren", "productive"]),
        ),
        max_size=150,
    )
)
@settings(max_examples=100)
def test_defense_blacklist_is_monotone(events):
    """Once blacklisted, a source never becomes trusted again."""
    defense = PongDefense(DefenseConfig(min_observations=3))
    ever_blacklisted = set()
    for source, entry, fate in events:
        defense.record_import(entry, source)
        if fate == "dead":
            defense.record_dead(entry)
        elif fate == "barren":
            defense.record_answer(entry, 0)
        else:
            defense.record_answer(entry, 1)
        for suspect in list(ever_blacklisted):
            assert defense.blocked(suspect)
        if defense.blocked(source):
            ever_blacklisted.add(source)


@given(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.integers(min_value=0, max_value=50),
        ),
        max_size=50,
    ),
)
@settings(max_examples=100)
def test_probe_budget_never_negative_never_over_capacity(
    refill, capacity, operations
):
    """Credit stays within [0, capacity] under any spend/refill pattern."""
    budget = ProbeBudget(refill_rate=refill, capacity=capacity)
    now = 0.0
    for delay, probes in operations:
        now += delay
        available = budget.available(now)
        assert 0 <= available <= capacity
        budget.spend(now, probes)
        assert 0 <= budget.available(now) <= capacity


@given(
    st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    st.floats(min_value=5.0, max_value=100.0, allow_nan=False),
)
@settings(max_examples=50)
def test_probe_budget_refill_rate_bounds_long_run_spending(refill, capacity):
    """Over a long horizon, admitted probes <= capacity + rate * time."""
    budget = ProbeBudget(refill_rate=refill, capacity=capacity)
    spent = 0
    horizon = 200.0
    step = 1.0
    now = 0.0
    while now < horizon:
        allowance = budget.available(now)
        budget.spend(now, allowance)
        spent += allowance
        now += step
    assert spent <= capacity + refill * horizon + 1
