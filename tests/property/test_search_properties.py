"""Property-based tests for the query-execution loop.

A static mini-network is built from hypothesis-chosen shapes (library
owners, dead peers, pong topology implicit via caches), and the core
accounting invariants are checked for every generated case:

* every address is probed at most once;
* probes == good + dead + refused;
* satisfied  ⟺  results >= desired;
* probe count never exceeds the number of distinct addresses knowable.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entry import CacheEntry
from repro.core.params import ProtocolParams
from repro.core.search import execute_query
from repro.network.transport import Transport
from tests.core.helpers import make_peer


class CountingTransport(Transport):
    """Transport that records which addresses got probed."""

    def __init__(self):
        super().__init__()
        self.probed: list[int] = []

    def probe(self, src, dst, message, time):
        self.probed.append(dst)
        return super().probe(src, dst, message, time)


@st.composite
def network_shapes(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    owners = draw(st.sets(st.integers(1, n), max_size=n))
    dead = draw(st.sets(st.integers(1, n), max_size=n))
    cached = draw(
        st.sets(st.integers(1, n), min_size=1, max_size=n)
    )
    pong_size = draw(st.integers(0, 5))
    desired = draw(st.integers(1, 3))
    walkers = draw(st.sampled_from([1, 2, 4]))
    seed = draw(st.integers(0, 2**31))
    return n, owners, dead, cached, pong_size, desired, walkers, seed


@given(network_shapes())
@settings(max_examples=120, deadline=None)
def test_search_accounting_invariants(shape):
    n, owners, dead, cached, pong_size, desired, walkers, seed = shape
    protocol = ProtocolParams(
        cache_size=max(1, n),
        pong_size=pong_size,
        parallel_probes=walkers,
    )
    rng = random.Random(seed)
    transport = CountingTransport()
    querier = make_peer(0, protocol=protocol, library=frozenset())
    transport.register(0, querier)

    peers = {}
    for i in range(1, n + 1):
        library = frozenset({42}) if i in owners else frozenset()
        peer = make_peer(i, protocol=protocol, library=library, seed=i)
        peers[i] = peer
        if i not in dead:
            transport.register(i, peer)
        # Give every peer a small random cache so pongs chain.
        for j in rng.sample(range(1, n + 1), min(3, n)):
            if j != i:
                peer.link_cache.insert(
                    CacheEntry(address=j),
                    peer.policies.replacement, 0.0, peer._policy_rng,
                )

    for address in cached:
        querier.link_cache.insert(
            CacheEntry(address=address),
            querier.policies.replacement, 0.0, querier._policy_rng,
        )

    result = execute_query(
        querier, 42, transport, 0.0, rng=rng, desired_results=desired
    )

    # Each address probed at most once.
    assert len(transport.probed) == len(set(transport.probed))
    # The querier never probes itself.
    assert 0 not in transport.probed
    # Accounting adds up.
    assert result.probes == len(transport.probed)
    assert (
        result.good_probes + result.dead_probes + result.refused_probes
        == result.probes
    )
    # Satisfaction definition.
    assert result.satisfied == (result.results >= desired)
    # Cannot probe more than the knowable universe.
    assert result.probes <= n
    # Results can only come from owners.
    assert result.results <= len(owners)
    # Dead probes only to dead (unregistered) addresses.
    assert all(address in dead for address in transport.probed
               if address not in transport._directory)
