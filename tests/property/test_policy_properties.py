"""Property-based tests for the policy framework."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entry import CacheEntry
from repro.core.policies import (
    REPLACEMENT_KEY_POLICY,
    get_ordering_policy,
    get_replacement_policy,
)

# Unique addresses so ties break deterministically but entries differ.
entry_lists = st.lists(
    st.builds(
        CacheEntry,
        address=st.integers(min_value=0, max_value=10_000),
        ts=st.floats(min_value=0, max_value=1e4, allow_nan=False),
        num_files=st.integers(min_value=0, max_value=10_000),
        num_res=st.integers(min_value=0, max_value=100),
    ),
    max_size=40,
    unique_by=lambda e: e.address,
)

deterministic_policies = st.sampled_from(["MRU", "LRU", "MFS", "MR"])
all_policies = st.sampled_from(["Random", "MRU", "LRU", "MFS", "MR"])


@given(entry_lists, all_policies, st.integers(min_value=0, max_value=2**32))
@settings(max_examples=100)
def test_order_is_permutation(entries, policy_name, seed):
    policy = get_ordering_policy(policy_name)
    ordered = policy.order(entries, 1e5, random.Random(seed))
    assert sorted(e.address for e in ordered) == sorted(
        e.address for e in entries
    )


@given(entry_lists, deterministic_policies)
@settings(max_examples=100)
def test_order_sorted_by_key(entries, policy_name):
    policy = get_ordering_policy(policy_name)
    ordered = policy.order(entries, 1e5, random.Random(0))
    keys = [policy.key(e, 1e5) for e in ordered]
    assert keys == sorted(keys, reverse=True)


@given(entry_lists, deterministic_policies)
@settings(max_examples=100)
def test_best_and_victim_are_extremes(entries, policy_name):
    policy = get_ordering_policy(policy_name)
    rng = random.Random(0)
    best = policy.select_best(entries, 1e5, rng)
    victim = policy.choose_victim(entries, 1e5, rng)
    if not entries:
        assert best is None and victim is None
        return
    keys = [policy.key(e, 1e5) for e in entries]
    assert policy.key(best, 1e5) == max(keys)
    assert policy.key(victim, 1e5) == min(keys)


@given(
    entry_lists,
    st.integers(min_value=0, max_value=10),
    all_policies,
    st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=100)
def test_select_top_size_and_membership(entries, k, policy_name, seed):
    policy = get_ordering_policy(policy_name)
    top = policy.select_top(entries, k, 1e5, random.Random(seed))
    assert len(top) == min(k, len(entries))
    addresses = [e.address for e in top]
    assert len(set(addresses)) == len(addresses)
    pool = {e.address for e in entries}
    assert set(addresses) <= pool


@given(entry_lists, deterministic_policies)
@settings(max_examples=100)
def test_select_top_prefix_of_order(entries, policy_name):
    policy = get_ordering_policy(policy_name)
    rng = random.Random(0)
    ordered = policy.order(entries, 1e5, rng)
    top3 = policy.select_top(entries, 3, 1e5, rng)
    assert [e.address for e in top3] == [e.address for e in ordered[:3]]


@given(entry_lists, st.sampled_from(sorted(REPLACEMENT_KEY_POLICY)))
@settings(max_examples=100)
def test_replacement_victim_is_member(entries, replacement_name):
    policy = get_replacement_policy(replacement_name)
    victim = policy.choose_victim(entries, 1e5, random.Random(0))
    if entries:
        assert victim in entries
    else:
        assert victim is None
