"""Property: all-noop freshness plans are invisible.

For random small configurations, a run with an all-noop
:class:`FreshnessPlan` (arbitrary delays and uniform-sizing tunings,
with invalidation disarmed by a zero budget or zero depth) produces the
*bit-identical* trace digest — and an equal report — to a run with no
plan at all.  This is the dynamic, randomized counterpart of the
pinned-digest checks in
``tests/integration/test_determinism.py::TestFreshnessPins``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.freshness import CacheSizing, FreshnessPlan
from repro.resilience import ChurnStorm, ScenarioPlan

seeds = st.integers(min_value=0, max_value=2**31 - 1)
cache_sizes = st.sampled_from([5, 10, 30])
delays = st.floats(min_value=0.001, max_value=10.0)
counts = st.integers(min_value=0, max_value=8)


@st.composite
def noop_plans(draw):
    """Plans whose every knob is set but which arm nothing.

    Invalidation needs budget > 0 AND depth > 0, so zero out at least
    one of them; sizing stays on the uniform policy, whose remaining
    tunings (reference_files, alpha, bounds) must all be dormant.
    """
    budget = draw(counts)
    depth = draw(counts)
    if budget > 0 and depth > 0:
        if draw(st.booleans()):
            budget = 0
        else:
            depth = 0
    sizing = CacheSizing(
        policy="uniform",
        reference_files=draw(st.integers(min_value=1, max_value=500)),
        alpha=draw(st.floats(min_value=1.1, max_value=5.0)),
        min_capacity=draw(st.integers(min_value=0, max_value=3)),
        max_capacity=0,
    )
    return FreshnessPlan(
        notify_budget=budget,
        depth=depth,
        notify_delay=draw(delays),
        on_overload=draw(st.booleans()),
        sizing=sizing,
    )


def _run(seed, cache_size, freshness, scenarios=None):
    sim = GuessSimulation(
        SystemParams(network_size=40),
        ProtocolParams(cache_size=cache_size),
        seed=seed,
        trace_hash=True,
        freshness=freshness,
        scenarios=scenarios,
    )
    sim.run(80.0)
    return sim.trace_digest, sim.report()


@given(seed=seeds, cache_size=cache_sizes, plan=noop_plans())
@settings(max_examples=8, deadline=None)
def test_noop_freshness_plans_are_invisible(seed, cache_size, plan):
    assert plan.is_noop()
    plain_digest, plain_report = _run(seed, cache_size, None)
    gated_digest, gated_report = _run(seed, cache_size, plan)
    assert gated_digest == plain_digest
    assert gated_report == plain_report


@given(seed=seeds)
@settings(max_examples=4, deadline=None)
def test_armed_plan_actually_notifies(seed):
    """Guard against a vacuous pass: an armed plan must send notices
    once peers start departing.  Natural lifetimes can outlast this
    short run, so a churn storm forces departures for every seed."""
    plan = FreshnessPlan(notify_budget=4, depth=2)
    storm = ScenarioPlan(
        storms=(ChurnStorm(start=20.0, width=10.0, fraction=0.5),)
    )
    _, plain = _run(seed, 10, None, storm)
    _, armed = _run(seed, 10, plan, storm)
    assert armed.freshness_notices > 0
    assert plain.freshness_notices == 0
