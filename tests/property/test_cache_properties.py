"""Property-based tests for the link cache and query cache."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entry import CacheEntry
from repro.core.link_cache import LinkCache
from repro.core.policies import get_replacement_policy
from repro.core.query_cache import QueryCache

entry_strategy = st.builds(
    CacheEntry,
    address=st.integers(min_value=0, max_value=50),
    ts=st.floats(min_value=0, max_value=1e4, allow_nan=False),
    num_files=st.integers(min_value=0, max_value=10_000),
    num_res=st.integers(min_value=0, max_value=100),
)

replacement_names = st.sampled_from(["Random", "LRU", "MRU", "LFS", "LR"])


@given(
    st.lists(entry_strategy, max_size=80),
    st.integers(min_value=1, max_value=10),
    replacement_names,
)
@settings(max_examples=80)
def test_link_cache_invariants(entries, capacity, replacement_name):
    """Size <= capacity; addresses unique; owner never cached."""
    owner = 0
    cache = LinkCache(capacity=capacity, owner=owner)
    policy = get_replacement_policy(replacement_name)
    rng = random.Random(1)
    for entry in entries:
        cache.insert(entry, policy, entry.ts, rng)
        assert len(cache) <= capacity
        addresses = list(cache.addresses())
        assert len(addresses) == len(set(addresses))
        assert owner not in cache


@given(st.lists(entry_strategy, max_size=80), replacement_names)
@settings(max_examples=80)
def test_link_cache_first_writer_wins(entries, replacement_name):
    """Once cached, an address's fields never change via insert."""
    cache = LinkCache(capacity=100, owner=0)
    policy = get_replacement_policy(replacement_name)
    rng = random.Random(2)
    first_seen = {}
    for entry in entries:
        cache.insert(entry, policy, entry.ts, rng)
        if entry.address in cache and entry.address not in first_seen:
            first_seen[entry.address] = (
                cache.get(entry.address).ts,
                cache.get(entry.address).num_files,
            )
    for address, (ts, num_files) in first_seen.items():
        cached = cache.get(address)
        if cached is not None:
            assert (cached.ts, cached.num_files) == (ts, num_files)


@given(
    st.lists(entry_strategy, max_size=60),
    st.sets(st.integers(min_value=0, max_value=50), max_size=10),
)
@settings(max_examples=80)
def test_query_cache_never_admits_seen_or_excluded(entries, excluded):
    cache = QueryCache(owner=0, excluded=excluded)
    admitted = set()
    for entry in entries:
        if cache.add(entry):
            admitted.add(entry.address)
    # Nothing excluded or owned was admitted; no duplicates possible.
    assert 0 not in admitted
    assert admitted.isdisjoint(excluded)
    assert len(admitted) == len(cache)


@given(st.lists(entry_strategy, max_size=60))
@settings(max_examples=80)
def test_query_cache_pop_is_terminal(entries):
    """A popped address can never re-enter the scratch space."""
    cache = QueryCache(owner=0)
    for entry in entries:
        cache.add(entry)
    popped = [e.address for e in list(cache.entries())[:5]]
    for address in popped:
        cache.pop(address)
    for entry in entries:
        if entry.address in popped:
            assert not cache.add(entry)
