"""Property-based tests for the workload samplers and structures."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.unionfind import UnionFind
from repro.workload.distributions import (
    BoundedParetoSampler,
    EmpiricalSampler,
    ZipfSampler,
)

seeds = st.integers(min_value=0, max_value=2**32)


@given(
    st.integers(min_value=1, max_value=500),
    st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    seeds,
)
@settings(max_examples=80)
def test_zipf_range_and_normalisation(n, exponent, seed):
    sampler = ZipfSampler(n, exponent)
    rng = random.Random(seed)
    for _ in range(20):
        assert 1 <= sampler.sample(rng) <= n
    total = sum(sampler.probability(r) for r in range(1, n + 1))
    assert abs(total - 1.0) < 1e-9


@given(
    st.integers(min_value=2, max_value=300),
    st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
)
@settings(max_examples=80)
def test_zipf_monotone_probabilities(n, exponent):
    sampler = ZipfSampler(n, exponent)
    probs = [sampler.probability(r) for r in range(1, n + 1)]
    assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))


@given(
    st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    st.floats(min_value=1.01, max_value=100.0, allow_nan=False),
    seeds,
)
@settings(max_examples=80)
def test_bounded_pareto_stays_in_bounds(alpha, lower, ratio, seed):
    upper = lower * ratio
    sampler = BoundedParetoSampler(alpha=alpha, lower=lower, upper=upper)
    rng = random.Random(seed)
    for _ in range(30):
        value = sampler.sample(rng)
        assert lower - 1e-9 <= value <= upper + 1e-9


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    ),
    seeds,
)
@settings(max_examples=80)
def test_empirical_sampler_stays_in_hull(observations, seed):
    sampler = EmpiricalSampler(observations)
    rng = random.Random(seed)
    lo, hi = min(observations), max(observations)
    for _ in range(20):
        assert lo - 1e-9 <= sampler.sample(rng) <= hi + 1e-9
    for q in (0.0, 0.25, 0.5, 0.75, 1.0):
        assert lo - 1e-9 <= sampler.quantile(q) <= hi + 1e-9


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=0, max_value=30),
        ),
        max_size=60,
    )
)
@settings(max_examples=80)
def test_unionfind_component_sizes_partition(unions):
    uf = UnionFind(range(31))
    for a, b in unions:
        uf.union(a, b)
    sizes = uf.component_sizes()
    assert sum(sizes) == 31
    assert uf.largest_component_size() == max(sizes)
    assert uf.num_components() == len(sizes)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=0, max_value=30),
        ),
        max_size=60,
    )
)
@settings(max_examples=80)
def test_unionfind_matches_naive_reachability(unions):
    uf = UnionFind(range(31))
    adjacency = {i: {i} for i in range(31)}
    for a, b in unions:
        uf.union(a, b)
        merged = adjacency[a] | adjacency[b]
        for node in merged:
            adjacency[node] = merged
    for i in range(31):
        assert uf.component_size(i) == len(adjacency[i])
