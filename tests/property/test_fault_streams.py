"""Property tests for the fault subsystem's determinism contract.

Two guarantees, mirroring the RNG-registry properties the fault
substreams are built on:

* **Source independence** — each fault source (loss, burst, jitter)
  draws from its own named substream, so enabling or exercising one
  source never perturbs another source's decision sequence;
* **No-op invisibility** — an all-zeros :class:`FaultPlan` builds no
  injector, draws nothing, and reproduces the fault-free trace digest
  bit-for-bit (the golden-digest pins in ``tests/integration`` rely on
  this; here it is checked across arbitrary seeds).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, GilbertElliott
from repro.sim.rng import RngRegistry

seeds = st.integers(min_value=0, max_value=2**63 - 1)
rates = st.floats(
    min_value=0.01, max_value=0.99, allow_nan=False, allow_infinity=False
)
interleaves = st.lists(st.booleans(), min_size=1, max_size=40)


def drop_sequence(injector: FaultInjector, count: int) -> list:
    return [injector.should_drop(1, 2, float(t)) for t in range(count)]


@given(seed=seeds, loss=rates, jitter=rates, interleave=interleaves)
@settings(max_examples=60)
def test_jitter_draws_never_perturb_the_loss_stream(
    seed, loss, jitter, interleave
):
    """Toggling jitter on — and actually drawing it — leaves every
    loss decision unchanged."""
    loss_only = FaultInjector(FaultPlan(loss_rate=loss), RngRegistry(seed))
    both = FaultInjector(
        FaultPlan(loss_rate=loss, jitter=jitter), RngRegistry(seed)
    )
    expected, observed = [], []
    for flag in interleave:
        if flag:
            expected.append(loss_only.should_drop(1, 2, 0.0))
            observed.append(both.should_drop(1, 2, 0.0))
        else:
            both.extra_rtt()  # extra jitter draws interleaved arbitrarily
    assert observed == expected


@given(seed=seeds, loss=rates, jitter=rates, interleave=interleaves)
@settings(max_examples=60)
def test_loss_draws_never_perturb_the_jitter_stream(
    seed, loss, jitter, interleave
):
    jitter_only = FaultInjector(FaultPlan(jitter=jitter), RngRegistry(seed))
    both = FaultInjector(
        FaultPlan(loss_rate=loss, jitter=jitter), RngRegistry(seed)
    )
    expected, observed = [], []
    for flag in interleave:
        if flag:
            expected.append(jitter_only.extra_rtt())
            observed.append(both.extra_rtt())
        else:
            both.should_drop(1, 2, 0.0)  # extra loss draws interleaved
    assert observed == expected


@given(seed=seeds, loss=rates, p_flip=rates)
@settings(max_examples=40)
def test_burst_chain_never_perturbs_the_independent_loss_stream(
    seed, loss, p_flip
):
    """The Gilbert-Elliott chain has its own stream: adding it changes
    *which probes also face burst loss*, never the independent coin."""
    # An (almost) lossless chain still steps its own stream per probe.
    plain = FaultInjector(FaultPlan(loss_rate=loss), RngRegistry(seed))
    chained = FaultInjector(
        FaultPlan(
            loss_rate=loss,
            burst=GilbertElliott(
                loss_bad=1e-12, p_good_to_bad=p_flip, p_bad_to_good=p_flip
            ),
        ),
        RngRegistry(seed),
    )
    # The chain's draws come from fault:burst, so the independent-loss
    # verdicts match the burst-free injector draw for draw — up to the
    # (probability ~1e-12) event of an actual burst drop, after which a
    # burst drop short-circuits the loss coin and the streams offset.
    for t in range(60):
        before = chained.drops_burst
        verdict_plain = plain.should_drop(1, 2, float(t))
        verdict_chained = chained.should_drop(1, 2, float(t))
        if chained.drops_burst != before:
            assert verdict_chained
            break
        assert verdict_chained == verdict_plain


@given(seed=seeds)
@settings(max_examples=8, deadline=None)
def test_all_zero_fault_plan_is_invisible_to_trace_digests(seed):
    """faults=None and faults=FaultPlan() are the same simulation."""

    def digest(faults):
        sim = GuessSimulation(
            SystemParams(network_size=40),
            ProtocolParams(cache_size=10),
            seed=seed,
            faults=faults,
            trace_hash=True,
        )
        sim.run(80.0)
        return sim.trace_digest, sim.report().probes_per_query

    assert digest(None) == digest(FaultPlan())


@given(seed=seeds, loss=rates)
@settings(max_examples=6, deadline=None)
def test_nonzero_plans_are_deterministic_and_visible(seed, loss):
    def digest(faults):
        sim = GuessSimulation(
            SystemParams(network_size=40),
            ProtocolParams(cache_size=10),
            seed=seed,
            faults=faults,
            trace_hash=True,
        )
        sim.run(80.0)
        return sim.trace_digest

    plan = FaultPlan(loss_rate=loss)
    assert digest(plan) == digest(plan)  # same plan replays exactly
