"""Property: observation never perturbs the simulation.

For random small configurations, a run with the full observability
bundle attached (span recorder + shared metrics registry, windowed)
produces the *bit-identical* trace digest — and an equal report — to a
run without any observers.  This is the dynamic, randomized counterpart
of the pinned-digest checks in
``tests/integration/test_determinism.py::TestObservationInvisibility``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.faults.plan import FaultPlan
from repro.observe.plan import ObservationPlan

seeds = st.integers(min_value=0, max_value=2**31 - 1)
cache_sizes = st.sampled_from([5, 10, 30])
retries = st.sampled_from([0, 2])
loss_rates = st.sampled_from([0.0, 0.1])
capacities = st.sampled_from([None, 7])
windows = st.sampled_from([None, 20.0])


def _run(seed, cache_size, probe_retries, loss, observe):
    sim = GuessSimulation(
        SystemParams(network_size=40),
        ProtocolParams(cache_size=cache_size, probe_retries=probe_retries),
        seed=seed,
        faults=FaultPlan(loss_rate=loss) if loss else None,
        trace_hash=True,
        observe=observe,
    )
    sim.run(80.0)
    return sim.trace_digest, sim.report()


@given(
    seed=seeds,
    cache_size=cache_sizes,
    probe_retries=retries,
    loss=loss_rates,
    capacity=capacities,
    window=windows,
)
@settings(max_examples=8, deadline=None)
def test_observation_is_invisible_to_trace_digests(
    seed, cache_size, probe_retries, loss, capacity, window
):
    plan = ObservationPlan(
        spans=True,
        span_capacity=capacity,
        registry=True,
        registry_window=window,
    )
    plain_digest, plain_report = _run(
        seed, cache_size, probe_retries, loss, None
    )
    observed_digest, observed_report = _run(
        seed, cache_size, probe_retries, loss, plan
    )
    assert observed_digest == plain_digest
    assert observed_report == plain_report


@given(seed=seeds)
@settings(max_examples=4, deadline=None)
def test_observers_actually_observe(seed):
    """Guard against a vacuous pass: the attached observers see traffic."""
    _, report = _run(seed, 10, 0, 0.0, None)
    sim = GuessSimulation(
        SystemParams(network_size=40),
        ProtocolParams(cache_size=10),
        seed=seed,
        observe=ObservationPlan(spans=True, registry=True),
    )
    sim.run(80.0)
    assert sim.span_recorder.completed == report.queries
    totals = sim.metrics_registry.snapshot()
    assert totals["sim.queries"] == report.queries
    assert totals["transport.probes_sent"] == report.transport_probes_sent
