"""Property tests for the named-RNG-stream registry (repro.sim.rng).

The two guarantees the determinism contract leans on:

* **Stream independence** — drawing from stream A never perturbs stream
  B's sequence, however the draws are interleaved (so adding a new
  consumer of randomness cannot silently change existing results);
* **Replayability** — re-registering the same master seed replays every
  stream identically, in any instantiation order.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RngRegistry, derive_seed

stream_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=12,
)
seeds = st.integers(min_value=0, max_value=2**63 - 1)


@given(
    seed=seeds,
    name_a=stream_names,
    name_b=stream_names,
    interleave=st.lists(st.booleans(), min_size=1, max_size=30),
)
@settings(max_examples=80)
def test_drawing_from_one_stream_never_perturbs_another(
    seed, name_a, name_b, interleave
):
    if name_a == name_b:
        return
    # Reference: stream A drawn alone.
    alone = RngRegistry(seed)
    expected = [
        alone.stream(name_a).random() for flag in interleave if flag
    ]
    # Same draws from A, with draws from B interleaved arbitrarily.
    mixed = RngRegistry(seed)
    observed = []
    for flag in interleave:
        if flag:
            observed.append(mixed.stream(name_a).random())
        else:
            mixed.stream(name_b).random()
    assert observed == expected


@given(
    seed=seeds,
    names=st.lists(stream_names, min_size=1, max_size=6, unique=True),
    draws=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=80)
def test_same_master_seed_replays_all_streams(seed, names, draws):
    first = RngRegistry(seed)
    replay = RngRegistry(seed)
    # Instantiate in opposite orders: creation order must not matter.
    sequences = {
        name: [first.stream(name).random() for _ in range(draws)]
        for name in names
    }
    for name in reversed(names):
        assert [
            replay.stream(name).random() for _ in range(draws)
        ] == sequences[name]


@given(seed=seeds, name=stream_names)
@settings(max_examples=80)
def test_derive_seed_is_pure(seed, name):
    assert derive_seed(seed, name) == derive_seed(seed, name)
    assert 0 <= derive_seed(seed, name) < 2**64


@given(seed=seeds, name_a=stream_names, name_b=stream_names)
@settings(max_examples=80)
def test_distinct_names_get_distinct_seeds(seed, name_a, name_b):
    if name_a == name_b:
        return
    assert derive_seed(seed, name_a) != derive_seed(seed, name_b)


@given(seed=seeds, name=stream_names)
@settings(max_examples=40)
def test_spawned_registries_replay_identically(seed, name):
    a = RngRegistry(seed).spawn(name)
    b = RngRegistry(seed).spawn(name)
    assert a.master_seed == b.master_seed
    assert [a.stream("s").random() for _ in range(8)] == [
        b.stream("s").random() for _ in range(8)
    ]
