"""Property tests for the gossip subsystem's determinism contract.

The gossip mechanisms — the standalone rumor baseline and the
gossip-assisted GUESS relay — draw exclusively from ``gossip:*``
substreams (statically enforced by an RD007 contract).  These tests are
the dynamic side of that proof:

* **Stream independence** — arming gossip and actually drawing from it
  never perturbs the ``fault:*`` or ``scenario:*`` decision sequences;
* **No-op invisibility** — a disabled :class:`GossipPlan` (``fanout=0``
  or ``ttl=0``) builds no relay, draws nothing, and reproduces the
  gossip-free trace digest bit-for-bit across arbitrary seeds (the
  golden-digest pins in ``tests/integration`` check three fixed seeds;
  here hypothesis picks them).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.extent import PopulationView
from repro.baselines.gnutella import GnutellaOverlay
from repro.baselines.gossip import (
    GossipParams,
    GossipPlan,
    GossipRelay,
    GossipSearch,
)
from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.resilience.scenarios import ChurnStorm, ScenarioDriver, ScenarioPlan
from repro.sim.rng import RngRegistry

seeds = st.integers(min_value=0, max_value=2**63 - 1)
rates = st.floats(
    min_value=0.01, max_value=0.99, allow_nan=False, allow_infinity=False
)
interleaves = st.lists(st.booleans(), min_size=1, max_size=40)

#: Deterministic candidate pool for relay draws — more addresses than
#: any fanout below, so pick_targets always actually samples.
CANDIDATES = tuple(range(100, 140))


@given(seed=seeds, loss=rates, fanout=st.integers(1, 5),
       interleave=interleaves)
@settings(max_examples=60)
def test_relay_draws_never_perturb_the_loss_stream(
    seed, loss, fanout, interleave
):
    """Arming the gossip relay — and actually sampling targets — leaves
    every fault-layer loss decision unchanged."""
    alone = FaultInjector(FaultPlan(loss_rate=loss), RngRegistry(seed))
    registry = RngRegistry(seed)
    with_gossip = FaultInjector(FaultPlan(loss_rate=loss), registry)
    relay = GossipRelay.from_plan(GossipPlan(fanout=fanout, ttl=2), registry)
    assert relay is not None
    expected, observed = [], []
    for flag in interleave:
        if flag:
            expected.append(alone.should_drop(1, 2, 0.0))
            observed.append(with_gossip.should_drop(1, 2, 0.0))
        else:
            relay.pick_targets(CANDIDATES, {101, 105})
    assert observed == expected


@given(seed=seeds, fraction=rates, fanout=st.integers(1, 5),
       interleave=interleaves)
@settings(max_examples=60)
def test_relay_draws_never_perturb_the_scenario_stream(
    seed, fraction, fanout, interleave
):
    """Relay sampling never shifts a churn storm's victim roster."""
    plan = ScenarioPlan(
        storms=(ChurnStorm(start=10.0, width=5.0, fraction=fraction),)
    )
    alone = ScenarioDriver.from_plan(plan, RngRegistry(seed))
    registry = RngRegistry(seed)
    with_gossip = ScenarioDriver.from_plan(plan, registry)
    relay = GossipRelay.from_plan(GossipPlan(fanout=fanout, ttl=1), registry)
    storm = plan.storms[0]
    expected, observed = [], []
    for flag in interleave:
        if flag:
            expected.append(alone.draw_departures(storm, 50))
            observed.append(with_gossip.draw_departures(storm, 50))
        else:
            relay.pick_targets(CANDIDATES, set())
    assert observed == expected


@given(seed=seeds, loss=rates,
       mode=st.sampled_from(("push", "pull", "push-pull")))
@settings(max_examples=25, deadline=None)
def test_gossip_search_never_perturbs_the_fault_streams(seed, loss, mode):
    """A full rumor workload on a shared registry leaves the fault
    injector's verdict sequence untouched."""
    alone = FaultInjector(FaultPlan(loss_rate=loss), RngRegistry(seed))
    registry = RngRegistry(seed)
    shared = FaultInjector(FaultPlan(loss_rate=loss), registry)
    overlay = GnutellaOverlay(30, degree=4, rng=random.Random(5))
    view = PopulationView.synthesize(30, random.Random(6))
    search = GossipSearch(
        overlay, view, GossipParams(mode=mode, fanout=2, rounds=3), registry
    )
    search.run_workload(5)
    verdicts_alone = [alone.should_drop(1, 2, float(t)) for t in range(30)]
    verdicts_shared = [shared.should_drop(1, 2, float(t)) for t in range(30)]
    assert verdicts_shared == verdicts_alone


@given(seed=seeds)
@settings(max_examples=8, deadline=None)
def test_disabled_plan_is_invisible_to_trace_digests(seed):
    """gossip=None, fanout=0, and ttl=0 are the same simulation."""

    def digest(gossip):
        sim = GuessSimulation(
            SystemParams(network_size=40),
            ProtocolParams(cache_size=10),
            seed=seed,
            gossip=gossip,
            trace_hash=True,
        )
        sim.run(80.0)
        return sim.trace_digest, sim.report().probes_per_query

    baseline = digest(None)
    assert digest(GossipPlan(fanout=0)) == baseline
    assert digest(GossipPlan(fanout=3, ttl=0)) == baseline


@given(seed=seeds, fanout=st.integers(1, 3))
@settings(max_examples=6, deadline=None)
def test_armed_plans_are_deterministic_and_visible(seed, fanout):
    """Same armed plan replays exactly; dissemination really happens."""

    def run(gossip):
        sim = GuessSimulation(
            SystemParams(network_size=40),
            ProtocolParams(cache_size=10),
            seed=seed,
            gossip=gossip,
            trace_hash=True,
        )
        sim.run(80.0)
        return sim.trace_digest, sim.report()

    plan = GossipPlan(fanout=fanout, ttl=2)
    digest_a, report_a = run(plan)
    digest_b, report_b = run(plan)
    assert digest_a == digest_b
    assert report_a == report_b
    assert report_a.gossip_rumors > 0
    # Gossip hops are scheduled events, so the armed digest must move.
    clean_digest, _ = run(None)
    assert digest_a != clean_digest
