"""Property: all-noop scenario plans and all-off policies are invisible.

For random small configurations, a run with an all-noop
:class:`ScenarioPlan` (disabled storms and crowds at arbitrary window
positions) and an all-off :class:`ResiliencePolicy` produces the
*bit-identical* trace digest — and an equal report — to a run with no
scenarios at all.  This is the dynamic, randomized counterpart of the
pinned-digest checks in
``tests/integration/test_determinism.py::TestScenarioInvisibility``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.resilience import (
    ChurnStorm,
    FlashCrowd,
    ResiliencePolicy,
    ScenarioPlan,
    SheddingSpec,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)
cache_sizes = st.sampled_from([5, 10, 30])
retries = st.sampled_from([0, 2])
starts = st.floats(min_value=0.0, max_value=200.0)
widths = st.floats(min_value=1.0, max_value=60.0)


@st.composite
def noop_plans(draw):
    """Plans whose every component is present but disabled."""
    storms = tuple(
        ChurnStorm(start=draw(starts), width=draw(widths), fraction=0.0)
        for _ in range(draw(st.integers(min_value=0, max_value=2)))
    )
    crowds = tuple(
        FlashCrowd(start=start, end=start + draw(widths), multiplier=1.0)
        for start in (
            draw(starts)
            for _ in range(draw(st.integers(min_value=0, max_value=2)))
        )
    )
    return ScenarioPlan(storms=storms, crowds=crowds)


def _run(seed, cache_size, probe_retries, scenarios, resilience):
    sim = GuessSimulation(
        SystemParams(network_size=40),
        ProtocolParams(cache_size=cache_size, probe_retries=probe_retries),
        seed=seed,
        trace_hash=True,
        scenarios=scenarios,
        resilience=resilience,
    )
    sim.run(80.0)
    return sim.trace_digest, sim.report()


@given(
    seed=seeds,
    cache_size=cache_sizes,
    probe_retries=retries,
    plan=noop_plans(),
)
@settings(max_examples=8, deadline=None)
def test_noop_scenarios_are_invisible_to_trace_digests(
    seed, cache_size, probe_retries, plan
):
    assert plan.is_noop()
    off_policy = ResiliencePolicy(shedding=SheddingSpec(soft_fraction=1.0))
    plain_digest, plain_report = _run(
        seed, cache_size, probe_retries, None, None
    )
    gated_digest, gated_report = _run(
        seed, cache_size, probe_retries, plan, off_policy
    )
    assert gated_digest == plain_digest
    assert gated_report == plain_report


@given(seed=seeds)
@settings(max_examples=4, deadline=None)
def test_enabled_storms_actually_kill(seed):
    """Guard against a vacuous pass: an armed storm forces departures."""
    plan = ScenarioPlan(
        storms=(ChurnStorm(start=20.0, width=10.0, fraction=0.5),)
    )
    _, plain = _run(seed, 10, 0, None, None)
    _, stormy = _run(seed, 10, 0, plan, None)
    assert stormy.deaths > plain.deaths
