"""Property-based tests for the discrete-event engine."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.events import EventPriority

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
priorities = st.sampled_from(list(EventPriority))


@given(st.lists(st.tuples(times, priorities), max_size=60))
@settings(max_examples=60)
def test_events_fire_in_sort_key_order(schedule):
    """Whatever the scheduling order, events fire by (time, priority, seq)."""
    sim = Simulator()
    fired = []
    for seq, (time, priority) in enumerate(schedule):
        sim.schedule(
            time,
            lambda t=time, p=priority, s=seq: fired.append((t, int(p), s)),
            priority=priority,
        )
    sim.run_until(1e6 + 1)
    assert fired == sorted(fired)
    assert len(fired) == len(schedule)


@given(st.lists(times, min_size=1, max_size=40))
@settings(max_examples=60)
def test_clock_is_monotone(event_times):
    sim = Simulator()
    observed = []
    for t in event_times:
        sim.schedule(t, lambda: observed.append(sim.now))
    sim.run_until(1e6 + 1)
    assert observed == sorted(observed)


@given(
    st.lists(st.tuples(times, st.booleans()), max_size=40),
)
@settings(max_examples=60)
def test_cancellation_exactly_removes_cancelled(schedule):
    sim = Simulator()
    fired = []
    expected = []
    for index, (time, cancel) in enumerate(schedule):
        handle = sim.schedule(time, lambda i=index: fired.append(i))
        if cancel:
            handle.cancel()
        else:
            expected.append(index)
    sim.run_until(1e6 + 1)
    assert sorted(fired) == expected


@given(st.lists(times, max_size=30), times)
@settings(max_examples=60)
def test_horizon_partition(event_times, horizon):
    """run_until(h) fires exactly the events with time <= h."""
    sim = Simulator()
    fired = []
    for t in event_times:
        sim.schedule(t, lambda t=t: fired.append(t))
    sim.run_until(horizon)
    assert fired == sorted(t for t in event_times if t <= horizon)
    sim.run_until(1e6 + 1)
    assert sorted(fired) == sorted(event_times)
