"""Tests for the iterative-deepening baseline."""

from __future__ import annotations

import random

import pytest

from repro.baselines.extent import PopulationView
from repro.baselines.iterative_deepening import IterativeDeepeningSearch
from repro.errors import WorkloadError
from repro.workload.content import ContentModel


@pytest.fixture
def rng():
    return random.Random(66)


def fixed_view(libraries):
    return PopulationView(
        libraries=tuple(frozenset(lib) for lib in libraries),
        content=ContentModel(catalog_size=100),
    )


class TestSchedule:
    def test_validation(self):
        view = fixed_view([{1}] * 10)
        with pytest.raises(WorkloadError):
            IterativeDeepeningSearch(view, schedule=())
        with pytest.raises(WorkloadError):
            IterativeDeepeningSearch(view, schedule=(10, 5))
        with pytest.raises(WorkloadError):
            IterativeDeepeningSearch(view, schedule=(5, 5))
        with pytest.raises(WorkloadError):
            IterativeDeepeningSearch(view, schedule=(0, 5))

    def test_clamped_to_population(self, rng):
        view = fixed_view([{}] * 10)  # nobody owns anything
        search = IterativeDeepeningSearch(view, schedule=(5, 100, 200))
        cost, satisfied = search.run(1, rng)
        assert not satisfied
        assert cost == 5 + 10  # 100 and 200 both clamp to 10, deduped


class TestRun:
    def test_popular_item_cheap(self, rng):
        view = fixed_view([{42}] * 100)
        search = IterativeDeepeningSearch(view, schedule=(10, 50, 100))
        cost, satisfied = search.run(42, rng)
        assert satisfied
        assert cost == 10  # first round always covers it

    def test_missing_item_pays_whole_schedule(self, rng):
        view = fixed_view([{1}] * 100)
        search = IterativeDeepeningSearch(view, schedule=(10, 50, 100))
        cost, satisfied = search.run(99, rng)
        assert not satisfied
        assert cost == 160

    def test_reflooding_accumulates_cost(self, rng):
        # A rare item found in round 2 costs round1 + round2.
        view = fixed_view([{42}] + [{}] * 99)
        search = IterativeDeepeningSearch(view, schedule=(10, 100))
        costs = {search.run(42, rng)[0] for _ in range(300)}
        assert costs <= {10, 110}
        assert 110 in costs  # the rare item regularly escapes round 1


class TestEvaluate:
    def test_matches_run_statistics(self, rng):
        view = PopulationView.synthesize(200, rng)
        targets = view.draw_query_targets(rng, 300)
        search = IterativeDeepeningSearch(view, schedule=(20, 100, 200))
        cost, unsat = search.evaluate(targets, rng)
        assert cost >= 20
        assert 0.0 <= unsat <= 1.0

    def test_empty_targets_rejected(self, rng):
        view = fixed_view([{1}] * 10)
        with pytest.raises(WorkloadError):
            IterativeDeepeningSearch(view, schedule=(5,)).evaluate([], rng)


class TestAnalyticCurve:
    def test_no_owner(self):
        view = fixed_view([{1}] * 10)
        search = IterativeDeepeningSearch(view, schedule=(5, 10))
        cost, unsat = search.expected_cost_curve(99)
        assert cost == 15.0
        assert unsat == 1.0

    def test_everyone_owns(self):
        view = fixed_view([{42}] * 10)
        search = IterativeDeepeningSearch(view, schedule=(5, 10))
        cost, unsat = search.expected_cost_curve(42)
        assert cost == pytest.approx(5.0)
        assert unsat == pytest.approx(0.0)

    def test_matches_sampled_mean(self, rng):
        view = fixed_view([{42}] * 2 + [{}] * 38)
        search = IterativeDeepeningSearch(view, schedule=(10, 40))
        analytic_cost, analytic_unsat = search.expected_cost_curve(42)
        samples = [search.run(42, rng) for _ in range(4000)]
        sampled_cost = sum(c for c, _ in samples) / len(samples)
        sampled_unsat = sum(1 for _, s in samples if not s) / len(samples)
        assert sampled_cost == pytest.approx(analytic_cost, rel=0.05)
        assert sampled_unsat == pytest.approx(analytic_unsat, abs=0.02)
