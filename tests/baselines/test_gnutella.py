"""Tests for the Gnutella flooding / fixed-extent baseline."""

from __future__ import annotations

import random

import pytest

from repro.baselines.extent import PopulationView
from repro.baselines.gnutella import (
    FixedExtentSearch,
    GnutellaOverlay,
    fixed_extent_tradeoff,
)
from repro.errors import TopologyError, WorkloadError
from repro.workload.content import ContentModel


@pytest.fixture
def rng():
    return random.Random(44)


def fixed_view(libraries):
    return PopulationView(
        libraries=tuple(frozenset(lib) for lib in libraries),
        content=ContentModel(catalog_size=100),
    )


class TestGnutellaOverlay:
    def test_connected_by_construction(self, rng):
        overlay = GnutellaOverlay(100, degree=4, rng=rng)
        reached = overlay.flood_reach(0, ttl=100)
        assert len(reached) == 99  # everyone except the source

    def test_degrees_near_target(self, rng):
        overlay = GnutellaOverlay(100, degree=4, rng=rng)
        degrees = [len(overlay.neighbors(v)) for v in range(100)]
        assert min(degrees) >= 2
        assert sum(degrees) / len(degrees) == pytest.approx(4, abs=1.5)

    def test_ttl_zero_reaches_nobody(self, rng):
        overlay = GnutellaOverlay(20, degree=3, rng=rng)
        assert overlay.flood_reach(0, ttl=0) == []

    def test_ttl_one_reaches_neighbors(self, rng):
        overlay = GnutellaOverlay(20, degree=3, rng=rng)
        assert set(overlay.flood_reach(5, ttl=1)) == overlay.neighbors(5)

    def test_reach_grows_with_ttl(self, rng):
        overlay = GnutellaOverlay(200, degree=4, rng=rng)
        sizes = [len(overlay.flood_reach(0, ttl)) for ttl in (1, 2, 3, 4)]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_flood_query_counts_messages_and_results(self, rng):
        overlay = GnutellaOverlay(10, degree=3, rng=rng)
        view = fixed_view([{42}] * 10)
        messages, results = overlay.flood_query(view, 0, 42, ttl=10)
        assert messages == 9
        assert results == 9

    def test_flood_query_view_size_mismatch(self, rng):
        overlay = GnutellaOverlay(10, degree=3, rng=rng)
        with pytest.raises(TopologyError):
            overlay.flood_query(fixed_view([{1}] * 5), 0, 1, ttl=2)

    def test_invalid_construction(self, rng):
        with pytest.raises(TopologyError):
            GnutellaOverlay(1, degree=2, rng=rng)
        with pytest.raises(TopologyError):
            GnutellaOverlay(10, degree=1, rng=rng)
        with pytest.raises(TopologyError):
            GnutellaOverlay(5, degree=5, rng=rng)

    def test_invalid_flood_args(self, rng):
        overlay = GnutellaOverlay(10, degree=3, rng=rng)
        with pytest.raises(TopologyError):
            overlay.flood_reach(99, 1)
        with pytest.raises(TopologyError):
            overlay.flood_reach(0, -1)


class TestFloodTransmissions:
    def test_ttl_zero_sends_nothing(self, rng):
        overlay = GnutellaOverlay(20, degree=3, rng=rng)
        assert overlay.flood_transmissions(0, 0) == (0, 0)

    def test_ttl_one_sends_degree_messages(self, rng):
        overlay = GnutellaOverlay(20, degree=3, rng=rng)
        transmissions, duplicates = overlay.flood_transmissions(5, 1)
        assert transmissions == len(overlay.neighbors(5))
        assert duplicates == 0

    def test_transmissions_cover_reach_plus_duplicates(self, rng):
        overlay = GnutellaOverlay(100, degree=4, rng=rng)
        transmissions, duplicates = overlay.flood_transmissions(0, 4)
        reached = len(overlay.flood_reach(0, 4))
        # Every reached peer consumed one non-duplicate transmission.
        assert transmissions == reached + duplicates

    def test_duplicates_appear_in_cyclic_topologies(self, rng):
        # A full flood over a connected graph with cycles must generate
        # duplicate deliveries (this is Gnutella's waste).
        overlay = GnutellaOverlay(50, degree=4, rng=rng)
        _, duplicates = overlay.flood_transmissions(0, 50)
        assert duplicates > 0

    def test_amplification_grows_with_ttl(self, rng):
        overlay = GnutellaOverlay(200, degree=4, rng=rng)
        amp2 = overlay.amplification_factor(0, 2)
        amp5 = overlay.amplification_factor(0, 5)
        assert amp5 > amp2 >= 1.0

    def test_invalid_args(self, rng):
        overlay = GnutellaOverlay(10, degree=3, rng=rng)
        with pytest.raises(TopologyError):
            overlay.flood_transmissions(99, 1)
        with pytest.raises(TopologyError):
            overlay.flood_transmissions(0, -1)


class TestFixedExtentSearch:
    def test_cost_is_always_extent(self, rng):
        view = fixed_view([{42}] * 10)
        search = FixedExtentSearch(view, extent=7)
        cost, satisfied = search.run(42, rng)
        assert cost == 7
        assert satisfied

    def test_unsat_probability_exact(self):
        view = fixed_view([{42}, {}, {}, {}])
        search = FixedExtentSearch(view, extent=2)
        assert search.unsat_probability(42) == pytest.approx(0.5)

    def test_nonexistent_item_never_satisfied(self, rng):
        view = fixed_view([{1}] * 10)
        search = FixedExtentSearch(view, extent=10)
        assert search.unsat_probability(99) == 1.0
        _, satisfied = search.run(99, rng)
        assert not satisfied

    def test_extent_bounds(self):
        view = fixed_view([{1}] * 5)
        with pytest.raises(WorkloadError):
            FixedExtentSearch(view, extent=0)
        with pytest.raises(WorkloadError):
            FixedExtentSearch(view, extent=6)


class TestTradeoffCurve:
    def test_unsat_decreases_with_extent(self, rng):
        view = PopulationView.synthesize(300, rng)
        targets = view.draw_query_targets(rng, 200)
        curve = fixed_extent_tradeoff(view, targets, [1, 10, 100, 300])
        rates = [rate for _, rate in curve]
        assert rates == sorted(rates, reverse=True)

    def test_full_extent_floor_is_no_owner_rate(self, rng):
        view = PopulationView.synthesize(300, rng)
        targets = view.draw_query_targets(rng, 200)
        curve = dict(fixed_extent_tradeoff(view, targets, [300]))
        no_owner = sum(1 for t in targets if view.owners_of(t) == 0)
        assert curve[300] == pytest.approx(no_owner / len(targets))

    def test_validation(self, rng):
        view = fixed_view([{1}] * 5)
        with pytest.raises(WorkloadError):
            fixed_extent_tradeoff(view, [], [1])
        with pytest.raises(WorkloadError):
            fixed_extent_tradeoff(view, [1], [10])
