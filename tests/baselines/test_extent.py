"""Tests for the shared population view."""

from __future__ import annotations

import random

import pytest

from repro.baselines.extent import PopulationView
from repro.errors import WorkloadError
from repro.workload.content import ContentModel


@pytest.fixture
def rng():
    return random.Random(8)


def fixed_view(libraries):
    return PopulationView(
        libraries=tuple(frozenset(lib) for lib in libraries),
        content=ContentModel(catalog_size=100),
    )


class TestConstruction:
    def test_synthesize_size(self, rng):
        view = PopulationView.synthesize(50, rng)
        assert view.size == 50

    def test_synthesize_invalid_size(self, rng):
        with pytest.raises(WorkloadError):
            PopulationView.synthesize(0, rng)

    def test_from_simulation_excludes_malicious(self):
        from repro.core import GuessSimulation, ProtocolParams, SystemParams

        sim = GuessSimulation(
            SystemParams(network_size=40, percent_bad_peers=25.0, query_rate=0.0),
            ProtocolParams(cache_size=5),
            seed=1,
        )
        view = PopulationView.from_simulation(sim)
        assert view.size == 30


class TestOwners:
    def test_owners_of(self):
        view = fixed_view([{1, 2}, {2}, {3}])
        assert view.owners_of(2) == 2
        assert view.owners_of(3) == 1
        assert view.owners_of(9) == 0

    def test_draw_query_targets(self, rng):
        view = fixed_view([{1}])
        targets = view.draw_query_targets(rng, 10)
        assert len(targets) == 10


class TestUnsatCurve:
    def test_no_owners_always_unsat(self):
        view = fixed_view([{1}] * 10)
        curve = view.unsat_probability_curve(0, 10)
        assert curve == [1.0] * 10

    def test_all_owners_first_draw_hits(self):
        view = fixed_view([{1}] * 10)
        curve = view.unsat_probability_curve(10, 10)
        assert curve[0] == pytest.approx(0.0)

    def test_exact_hypergeometric_values(self):
        # 4 peers, 1 owner: P(miss after E draws) = (4-E)/4.
        view = fixed_view([{1}, {}, {}, {}])
        curve = view.unsat_probability_curve(1, 4)
        assert curve == pytest.approx([0.75, 0.5, 0.25, 0.0])

    def test_monotone_nonincreasing(self):
        view = fixed_view([{1}] * 100)
        curve = view.unsat_probability_curve(7, 100)
        assert all(a >= b - 1e-12 for a, b in zip(curve, curve[1:]))

    def test_bounds_validated(self):
        view = fixed_view([{1}] * 5)
        with pytest.raises(WorkloadError):
            view.unsat_probability_curve(6, 5)
        with pytest.raises(WorkloadError):
            view.unsat_probability_curve(1, 6)
        with pytest.raises(WorkloadError):
            view.unsat_probability_curve(-1, 5)


class TestFirstOwnerPosition:
    def test_none_without_owners(self, rng):
        view = fixed_view([{}] * 5)
        assert view.sample_first_owner_position(0, rng) is None

    def test_position_in_range(self, rng):
        view = fixed_view([{1}] * 20)
        for _ in range(100):
            position = view.sample_first_owner_position(3, rng)
            assert 1 <= position <= 20

    def test_all_owners_position_one(self, rng):
        view = fixed_view([{1}] * 5)
        assert view.sample_first_owner_position(5, rng) == 1

    def test_expected_position_statistics(self, rng):
        # With m owners among n peers, E[first position] = (n+1)/(m+1).
        view = fixed_view([{1}] * 30)
        positions = [
            view.sample_first_owner_position(2, rng) for _ in range(4000)
        ]
        expected = (30 + 1) / (2 + 1)
        assert sum(positions) / len(positions) == pytest.approx(expected, rel=0.1)
