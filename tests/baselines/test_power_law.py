"""Tests for the power-law overlay and the §3.3 fragmentation claim."""

from __future__ import annotations

import random

import pytest

from repro.baselines.gnutella import GnutellaOverlay
from repro.errors import TopologyError


@pytest.fixture
def rng():
    return random.Random(77)


class TestPowerLawConstruction:
    def test_connected(self, rng):
        overlay = GnutellaOverlay.power_law(200, attach=2, rng=rng)
        assert len(overlay.flood_reach(0, ttl=200)) == 199

    def test_heavy_tailed_degrees(self, rng):
        overlay = GnutellaOverlay.power_law(500, attach=2, rng=rng)
        degrees = overlay.degree_sequence()
        # The hub's degree dwarfs the median — the power-law signature.
        median = degrees[len(degrees) // 2]
        assert degrees[0] > 8 * median

    def test_min_degree_respected(self, rng):
        overlay = GnutellaOverlay.power_law(200, attach=3, rng=rng)
        assert min(overlay.degree_sequence()) >= 3

    def test_validation(self, rng):
        with pytest.raises(TopologyError):
            GnutellaOverlay.power_law(2, attach=1, rng=rng)
        with pytest.raises(TopologyError):
            GnutellaOverlay.power_law(10, attach=0, rng=rng)
        with pytest.raises(TopologyError):
            GnutellaOverlay.power_law(10, attach=10, rng=rng)


class TestFragmentationClaim:
    """§3.3: power-law Gnutella fragments under targeted hub removal;
    degree-limited (near-regular) topologies are far more robust."""

    @staticmethod
    def _hubs(overlay, count):
        by_degree = sorted(
            range(overlay.n),
            key=lambda v: -len(overlay.neighbors(v)),
        )
        return set(by_degree[:count])

    def test_power_law_shatters_under_hub_removal(self, rng):
        n = 400
        power_law = GnutellaOverlay.power_law(n, attach=2, rng=rng)
        regular = GnutellaOverlay(n, degree=4, rng=random.Random(78))
        removed = n // 20  # top 5% by degree
        pl_lcc = power_law.lcc_after_removal(self._hubs(power_law, removed))
        reg_lcc = regular.lcc_after_removal(self._hubs(regular, removed))
        # The paper's point: the weakness is the topology, not the
        # protocol — capping degrees (near-regular graph) removes it.
        assert pl_lcc < reg_lcc

    def test_random_removal_is_benign_for_both(self, rng):
        n = 400
        overlay = GnutellaOverlay.power_law(n, attach=2, rng=rng)
        doomed = set(random.Random(5).sample(range(n), n // 20))
        assert overlay.lcc_after_removal(doomed) > 0.8 * n

    def test_lcc_after_removing_everyone(self, rng):
        overlay = GnutellaOverlay.power_law(10, attach=2, rng=rng)
        assert overlay.lcc_after_removal(set(range(10))) == 0

    def test_lcc_after_removing_nobody(self, rng):
        overlay = GnutellaOverlay.power_law(50, attach=2, rng=rng)
        assert overlay.lcc_after_removal(set()) == 50
