"""Tests for the gossip (rumor-spreading) search baseline."""

from __future__ import annotations

import random

import pytest

from repro.baselines.extent import PopulationView
from repro.baselines.gnutella import GnutellaOverlay
from repro.baselines.gossip import (
    GossipParams,
    GossipPlan,
    GossipRelay,
    GossipSearch,
)
from repro.errors import TopologyError, WorkloadError
from repro.sim.rng import RngRegistry
from repro.workload.content import ContentModel


def overlay_of(n, degree=4, seed=44):
    return GnutellaOverlay(n, degree=degree, rng=random.Random(seed))


def fixed_view(libraries):
    return PopulationView(
        libraries=tuple(frozenset(lib) for lib in libraries),
        content=ContentModel(catalog_size=100),
    )


def search_of(n=30, seed=9, **params):
    overlay = overlay_of(n)
    view = PopulationView.synthesize(n, random.Random(seed))
    return GossipSearch(
        overlay, view, GossipParams(**params), RngRegistry(seed)
    )


class TestGossipParams:
    def test_defaults_are_valid(self):
        GossipParams()

    @pytest.mark.parametrize("kwargs", [
        {"mode": "broadcast"},
        {"fanout": 0},
        {"rounds": 0},
        {"desired_results": 0},
        {"faulty_fraction": -0.1},
        {"faulty_fraction": 1.5},
        {"faulty_mode": "lie"},
        {"report_offset": 0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(WorkloadError):
            GossipParams(**kwargs)

    def test_view_overlay_size_mismatch_rejected(self):
        overlay = overlay_of(10)
        view = PopulationView.synthesize(12, random.Random(1))
        with pytest.raises(TopologyError):
            GossipSearch(overlay, view, GossipParams(), RngRegistry(0))

    def test_source_out_of_range_rejected(self):
        search = search_of(n=10)
        with pytest.raises(TopologyError):
            search.run_query(10, 1)

    def test_workload_needs_queries(self):
        with pytest.raises(WorkloadError):
            search_of(n=10).run_workload(0)


class TestInfectionAccounting:
    @pytest.mark.parametrize("mode", ["push", "pull", "push-pull"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_message_bound_holds(self, mode, seed):
        """TTL bounds total exchanges: messages <= n * fanout * rounds."""
        n, fanout, rounds = 40, 3, 4
        search = search_of(n=n, seed=seed, mode=mode,
                           fanout=fanout, rounds=rounds)
        for source in (0, 7, 19):
            outcome = search.run_query(source, 1)
            assert outcome.messages <= n * fanout * rounds
            assert outcome.rounds_used <= rounds

    @pytest.mark.parametrize("mode", ["push", "pull", "push-pull"])
    def test_infection_dedup_never_double_counts(self, mode):
        """A peer joins the infection tree at most once, so reporters —
        and therefore result counts — are duplicate-free even though
        duplicate contacts happen constantly."""
        n = 25
        overlay = overlay_of(n)
        view = fixed_view([{42}] * n)  # every peer owns the target
        search = GossipSearch(
            overlay, view,
            GossipParams(mode=mode, fanout=3, rounds=8),
            RngRegistry(3),
        )
        outcome = search.run_query(0, 42)
        assert outcome.duplicates > 0  # dedup was actually exercised
        assert len(outcome.reporters) == len(set(outcome.reporters))
        # One honest result per infected reporter, never more.
        assert outcome.honest_results == len(outcome.reporters)
        assert outcome.honest_results <= outcome.infected - 1
        assert outcome.infected <= n

    def test_saturated_rumor_stops_early(self):
        search = search_of(n=10, fanout=4, rounds=50)
        outcome = search.run_query(0, 1)
        assert outcome.rounds_used < 50
        assert outcome.infected == 10

    def test_loads_accumulate_across_queries(self):
        search = search_of(n=20)
        summary = search.run_workload(10)
        assert summary.max_load == max(search.loads)
        assert summary.max_load >= 1
        assert sum(search.loads) == pytest.approx(
            summary.messages_per_query * summary.queries
        )

    def test_same_seed_reproduces_summary(self):
        assert search_of(seed=6).run_workload(8) == \
            search_of(seed=6).run_workload(8)

    def test_push_pull_spreads_at_least_as_far_as_push(self):
        push = search_of(seed=4, mode="push", fanout=2, rounds=3)
        both = search_of(seed=4, mode="push-pull", fanout=2, rounds=3)
        assert both.run_query(0, 1).infected >= push.run_query(0, 1).infected


class TestFaultyReporting:
    def test_inflation_raises_claimed_above_honest(self):
        honest = search_of(seed=12, faulty_fraction=0.0).run_workload(30)
        faulty = search_of(seed=12, faulty_fraction=0.3,
                           faulty_mode="inflate").run_workload(30)
        # Roles come from gossip:roles, spread from gossip:spread — so
        # inflation perturbs *only* the claimed channel.
        assert faulty.honest_results_per_query == \
            honest.honest_results_per_query
        assert faulty.satisfaction_rate == honest.satisfaction_rate
        assert faulty.claimed_results_per_query > \
            faulty.honest_results_per_query

    def test_suppression_loses_reports(self):
        honest = search_of(seed=12, faulty_fraction=0.0).run_workload(30)
        faulty = search_of(seed=12, faulty_fraction=0.3,
                           faulty_mode="suppress").run_workload(30)
        assert faulty.suppressed_reports > 0
        assert faulty.honest_results_per_query < \
            honest.honest_results_per_query
        assert faulty.satisfaction_rate <= honest.satisfaction_rate

    def test_no_faulty_peers_means_channels_agree(self):
        summary = search_of(seed=5).run_workload(20)
        assert summary.claimed_results_per_query == \
            summary.honest_results_per_query
        assert summary.suppressed_reports == 0

    def test_suppressors_never_report_own_results(self):
        n = 15
        overlay = overlay_of(n)
        view = fixed_view([{42}] * n)
        search = GossipSearch(
            overlay, view,
            GossipParams(fanout=3, rounds=6, faulty_fraction=0.4,
                         faulty_mode="suppress"),
            RngRegistry(7),
        )
        outcome = search.run_query(0, 42)
        assert not set(outcome.reporters) & search.faulty


class TestGossipPlanRelay:
    def test_plan_rejects_bad_knobs(self):
        with pytest.raises(WorkloadError):
            GossipPlan(fanout=-1)
        with pytest.raises(WorkloadError):
            GossipPlan(ttl=-1)
        with pytest.raises(WorkloadError):
            GossipPlan(hop_delay=0.0)

    @pytest.mark.parametrize("plan", [
        None, GossipPlan(), GossipPlan(fanout=0), GossipPlan(fanout=2, ttl=0)
    ])
    def test_from_plan_gates_noops_to_none(self, plan):
        assert GossipRelay.from_plan(plan, RngRegistry(0)) is None

    def test_from_plan_builds_relay_for_armed_plan(self):
        relay = GossipRelay.from_plan(GossipPlan(fanout=2, ttl=2),
                                      RngRegistry(0))
        assert relay is not None
        assert relay.plan.fanout == 2

    def test_pick_targets_excludes_seen_and_respects_fanout(self):
        relay = GossipRelay.from_plan(GossipPlan(fanout=2, ttl=1),
                                      RngRegistry(1))
        candidates = [10, 11, 12, 13]
        picked = relay.pick_targets(candidates, {11, 13})
        assert picked == [10, 12]  # <= fanout fresh: all of them, in order
        picked = relay.pick_targets(candidates, set())
        assert len(picked) == 2
        assert set(picked) <= set(candidates)
