"""Tests for the shared-file-count model."""

from __future__ import annotations

import random

import pytest

from repro.errors import WorkloadError
from repro.workload.files import FileCountModel


@pytest.fixture
def rng():
    return random.Random(99)


class TestFileCountModel:
    def test_nonnegative_integers(self, rng):
        model = FileCountModel()
        for _ in range(500):
            value = model.sample(rng)
            assert isinstance(value, int)
            assert value >= 0

    def test_free_rider_fraction(self, rng):
        model = FileCountModel(free_rider_p=0.25)
        draws = model.sample_many(rng, 8000)
        zero_fraction = draws.count(0) / len(draws)
        assert zero_fraction == pytest.approx(0.25, abs=0.03)

    def test_no_free_riders_when_disabled(self, rng):
        model = FileCountModel(free_rider_p=0.0)
        assert all(model.sample(rng) >= 1 for _ in range(500))

    def test_heavy_tail_present(self, rng):
        model = FileCountModel()
        draws = model.sample_many(rng, 8000)
        assert max(draws) > 1000  # the Pareto tail fires

    def test_skew_top_sharers_dominate(self, rng):
        # The Saroiu headline: a small minority serves most content.
        model = FileCountModel()
        draws = sorted(model.sample_many(rng, 5000), reverse=True)
        top = sum(draws[: len(draws) // 10])
        assert top / max(1, sum(draws)) > 0.5

    def test_tail_bounds_respected(self, rng):
        model = FileCountModel(
            tail_p=1.0 - 1e-9, free_rider_p=0.0,
            tail_lower=100.0, tail_upper=200.0,
        )
        draws = model.sample_many(rng, 300)
        assert all(100 <= v <= 200 for v in draws)

    def test_sample_many_count(self, rng):
        assert len(FileCountModel().sample_many(rng, 13)) == 13

    def test_sample_many_negative_rejected(self, rng):
        with pytest.raises(WorkloadError):
            FileCountModel().sample_many(rng, -1)

    def test_invalid_probabilities(self):
        with pytest.raises(WorkloadError):
            FileCountModel(free_rider_p=1.0)
        with pytest.raises(WorkloadError):
            FileCountModel(free_rider_p=-0.1)
        with pytest.raises(WorkloadError):
            FileCountModel(tail_p=1.5)
