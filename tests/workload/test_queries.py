"""Tests for the bursty query-arrival process."""

from __future__ import annotations

import random

import pytest

from repro.errors import WorkloadError
from repro.workload.queries import QueryBurstProcess


@pytest.fixture
def rng():
    return random.Random(3)


class TestQueryBurstProcess:
    def test_burst_size_bounds(self, rng):
        process = QueryBurstProcess()
        sizes = {process.burst_size(rng) for _ in range(500)}
        assert sizes <= {1, 2, 3, 4, 5}
        assert {1, 5} <= sizes  # extremes appear over 500 draws

    def test_mean_burst_size(self):
        assert QueryBurstProcess().mean_burst_size == 3.0

    def test_burst_rate_derated_by_burst_size(self):
        process = QueryBurstProcess(query_rate=0.03)
        assert process.burst_rate == pytest.approx(0.01)

    def test_long_run_query_rate(self, rng):
        process = QueryBurstProcess(query_rate=0.1)
        total_time = 0.0
        total_queries = 0
        for _ in range(3000):
            total_time += process.next_burst_delay(rng)
            total_queries += process.burst_size(rng)
        assert total_queries / total_time == pytest.approx(0.1, rel=0.1)

    def test_zero_rate_never_fires(self, rng):
        process = QueryBurstProcess(query_rate=0.0)
        assert process.next_burst_delay(rng) == float("inf")

    def test_delays_positive(self, rng):
        process = QueryBurstProcess(query_rate=1.0)
        assert all(process.next_burst_delay(rng) >= 0 for _ in range(200))

    def test_custom_burst_bounds(self, rng):
        process = QueryBurstProcess(min_burst=2, max_burst=2)
        assert process.burst_size(rng) == 2
        assert process.mean_burst_size == 2.0

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            QueryBurstProcess(query_rate=-0.1)
        with pytest.raises(WorkloadError):
            QueryBurstProcess(min_burst=0)
        with pytest.raises(WorkloadError):
            QueryBurstProcess(min_burst=5, max_burst=2)
