"""Tests for the content/query model."""

from __future__ import annotations

import random

import pytest

from repro.errors import WorkloadError
from repro.workload.content import NONEXISTENT_FILE, ContentModel


@pytest.fixture
def rng():
    return random.Random(5)


@pytest.fixture
def model():
    return ContentModel(catalog_size=1000)


class TestLibraries:
    def test_empty_for_free_riders(self, model, rng):
        assert model.build_library(rng, 0) == frozenset()

    def test_library_size_close_to_requested(self, model, rng):
        library = model.build_library(rng, 50)
        assert 1 <= len(library) <= 50

    def test_ranks_in_catalog(self, model, rng):
        library = model.build_library(rng, 100)
        assert all(1 <= rank <= 1000 for rank in library)

    def test_popular_files_more_replicated(self, rng):
        model = ContentModel(catalog_size=500, ownership_exponent=1.0)
        owners_of_rank1 = 0
        owners_of_rank400 = 0
        for _ in range(300):
            library = model.build_library(rng, 30)
            owners_of_rank1 += 1 in library
            owners_of_rank400 += 400 in library
        assert owners_of_rank1 > owners_of_rank400

    def test_negative_num_files_rejected(self, model, rng):
        with pytest.raises(WorkloadError):
            model.build_library(rng, -1)

    def test_library_is_frozenset(self, model, rng):
        assert isinstance(model.build_library(rng, 10), frozenset)


class TestQueries:
    def test_targets_in_catalog_or_nonexistent(self, model, rng):
        for _ in range(500):
            target = model.draw_query_target(rng)
            assert target == NONEXISTENT_FILE or 1 <= target <= 1000

    def test_nonexistent_rate(self, rng):
        model = ContentModel(catalog_size=100, nonexistent_p=0.2)
        draws = [model.draw_query_target(rng) for _ in range(5000)]
        rate = draws.count(NONEXISTENT_FILE) / len(draws)
        assert rate == pytest.approx(0.2, abs=0.03)

    def test_nonexistent_disabled(self, rng):
        model = ContentModel(catalog_size=100, nonexistent_p=0.0)
        assert all(
            model.draw_query_target(rng) != NONEXISTENT_FILE
            for _ in range(500)
        )

    def test_matches(self):
        library = frozenset({3, 5})
        assert ContentModel.matches(library, 3)
        assert not ContentModel.matches(library, 4)
        assert not ContentModel.matches(library, NONEXISTENT_FILE)

    def test_nonexistent_never_matches_even_large_library(self, model, rng):
        library = model.build_library(rng, 500)
        assert not ContentModel.matches(library, NONEXISTENT_FILE)


class TestCalibration:
    def test_unsatisfiable_floor_near_paper_value(self, rng):
        """~6% of queries should have no owner among ~1000 peers (§6.2)."""
        model = ContentModel()
        libraries = [
            model.build_library(rng, random.Random(i).randint(0, 300))
            for i in range(1000)
        ]
        owned = frozenset().union(*libraries)
        unsatisfiable = 0
        queries = 2000
        for _ in range(queries):
            target = model.draw_query_target(rng)
            if target == NONEXISTENT_FILE or target not in owned:
                unsatisfiable += 1
        assert 0.02 <= unsatisfiable / queries <= 0.14

    def test_ownership_probability_accessor(self):
        model = ContentModel(catalog_size=100, ownership_exponent=1.0)
        assert model.expected_owner_probability(
            1
        ) > model.expected_owner_probability(50)

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            ContentModel(catalog_size=0)
        with pytest.raises(WorkloadError):
            ContentModel(nonexistent_p=1.0)
