"""Tests for workload trace I/O."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workload.trace_io import (
    lifetime_model_from_file,
    load_trace,
    save_trace,
)


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "trace.txt"
        values = [1.5, 2.0, 3600.0]
        save_trace(path, values)
        assert load_trace(path) == values

    def test_header_preserved_as_comments(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(path, [1.0], header="source: test\nunits: seconds")
        text = path.read_text()
        assert text.startswith("# source: test\n# units: seconds\n")
        assert load_trace(path) == [1.0]

    def test_precision_survives(self, tmp_path):
        path = tmp_path / "trace.txt"
        values = [0.1 + 0.2, 1e-9, 123456.789012345]
        save_trace(path, values)
        assert load_trace(path) == values


class TestLoadValidation:
    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# hi\n\n1.0\n\n# mid\n2.0\n")
        assert load_trace(path) == [1.0, 2.0]

    def test_garbage_rejected_with_location(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1.0\nbanana\n")
        with pytest.raises(WorkloadError, match="2"):
            load_trace(path)

    def test_non_finite_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("inf\n")
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(WorkloadError):
            load_trace(path)


class TestSaveValidation:
    def test_empty_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            save_trace(tmp_path / "t.txt", [])

    def test_non_finite_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            save_trace(tmp_path / "t.txt", [1.0, float("nan")])


class TestLifetimeModelFromFile:
    def test_model_resamples_trace(self, tmp_path):
        import random

        path = tmp_path / "sessions.txt"
        save_trace(path, [100.0] * 20)
        model = lifetime_model_from_file(path, multiplier=2.0)
        assert model.sample(random.Random(0)) == pytest.approx(200.0)

    def test_non_positive_sessions_rejected(self, tmp_path):
        path = tmp_path / "sessions.txt"
        save_trace(path, [10.0, 0.0])
        with pytest.raises(WorkloadError):
            lifetime_model_from_file(path)
