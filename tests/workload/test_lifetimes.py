"""Tests for the peer-lifetime model."""

from __future__ import annotations

import random

import pytest

from repro.errors import WorkloadError
from repro.workload.lifetimes import (
    DEFAULT_MEDIAN_LIFETIME_S,
    MIN_LIFETIME_S,
    LifetimeModel,
    synthesize_lifetime_sample,
)


@pytest.fixture
def rng():
    return random.Random(7)


class TestSyntheticSample:
    def test_size(self):
        assert len(synthesize_lifetime_sample(size=100)) == 100

    def test_floor_respected(self):
        sample = synthesize_lifetime_sample(size=5000)
        assert min(sample) >= MIN_LIFETIME_S

    def test_deterministic(self):
        assert synthesize_lifetime_sample(size=10) == synthesize_lifetime_sample(
            size=10
        )

    def test_median_near_configured(self):
        sample = sorted(synthesize_lifetime_sample(size=20_000))
        median = sample[len(sample) // 2]
        assert median == pytest.approx(DEFAULT_MEDIAN_LIFETIME_S, rel=0.1)

    def test_heavy_tail_exists(self):
        sample = synthesize_lifetime_sample(size=20_000)
        assert max(sample) > 10 * DEFAULT_MEDIAN_LIFETIME_S

    def test_invalid_size(self):
        with pytest.raises(WorkloadError):
            synthesize_lifetime_sample(size=0)


class TestLifetimeModel:
    def test_positive_samples(self, rng):
        model = LifetimeModel()
        assert all(model.sample(rng) > 0 for _ in range(100))

    def test_multiplier_scales(self, rng):
        base = LifetimeModel(multiplier=1.0)
        scaled = LifetimeModel(multiplier=0.2)
        assert scaled.median() == pytest.approx(0.2 * base.median())

    def test_invalid_multiplier(self):
        with pytest.raises(WorkloadError):
            LifetimeModel(multiplier=0.0)
        with pytest.raises(WorkloadError):
            LifetimeModel(multiplier=-1.0)

    def test_custom_sample(self, rng):
        model = LifetimeModel(sample=[100.0, 100.0, 100.0])
        assert model.sample(rng) == pytest.approx(100.0)

    def test_custom_sample_validates_positive(self):
        with pytest.raises(WorkloadError):
            LifetimeModel(sample=[10.0, -1.0])

    def test_from_registry_factory(self):
        from repro.sim.rng import RngRegistry

        model = LifetimeModel.from_registry(RngRegistry(0), multiplier=2.0)
        assert model.multiplier == 2.0
