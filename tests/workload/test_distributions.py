"""Tests for the workload samplers."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import WorkloadError
from repro.workload.distributions import (
    BoundedParetoSampler,
    EmpiricalSampler,
    LogNormalSampler,
    ZipfSampler,
)


@pytest.fixture
def rng():
    return random.Random(123)


class TestZipfSampler:
    def test_samples_in_range(self, rng):
        sampler = ZipfSampler(100, 1.0)
        for _ in range(500):
            assert 1 <= sampler.sample(rng) <= 100

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(50, 0.8)
        total = sum(sampler.probability(r) for r in range(1, 51))
        assert total == pytest.approx(1.0)

    def test_rank_one_most_probable(self):
        sampler = ZipfSampler(100, 1.0)
        assert sampler.probability(1) > sampler.probability(2)
        assert sampler.probability(2) > sampler.probability(50)

    def test_skew_increases_head_mass(self):
        flat = ZipfSampler(100, 0.2)
        steep = ZipfSampler(100, 1.5)
        assert steep.probability(1) > flat.probability(1)

    def test_exponent_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0)
        probs = [sampler.probability(r) for r in range(1, 11)]
        assert all(p == pytest.approx(0.1) for p in probs)

    def test_empirical_head_frequency(self, rng):
        sampler = ZipfSampler(1000, 1.0)
        draws = sampler.sample_many(rng, 20_000)
        frequency = draws.count(1) / len(draws)
        assert frequency == pytest.approx(sampler.probability(1), rel=0.15)

    def test_sample_many_length(self, rng):
        assert len(ZipfSampler(10).sample_many(rng, 7)) == 7

    def test_n_one(self, rng):
        sampler = ZipfSampler(1, 1.0)
        assert sampler.sample(rng) == 1

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0)
        with pytest.raises(WorkloadError):
            ZipfSampler(10, -1.0)
        with pytest.raises(WorkloadError):
            ZipfSampler(10).probability(11)


class TestLogNormalSampler:
    def test_positive_samples(self, rng):
        sampler = LogNormalSampler(median=100.0, sigma=1.0)
        assert all(sampler.sample(rng) > 0 for _ in range(200))

    def test_median_approximately_respected(self, rng):
        sampler = LogNormalSampler(median=100.0, sigma=1.0)
        draws = sorted(sampler.sample(rng) for _ in range(4000))
        empirical_median = draws[len(draws) // 2]
        assert empirical_median == pytest.approx(100.0, rel=0.15)

    def test_mean_formula(self):
        sampler = LogNormalSampler(median=10.0, sigma=0.5)
        assert sampler.mean() == pytest.approx(
            10.0 * math.exp(0.5**2 / 2)
        )

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            LogNormalSampler(median=0.0, sigma=1.0)
        with pytest.raises(WorkloadError):
            LogNormalSampler(median=1.0, sigma=0.0)


class TestBoundedParetoSampler:
    def test_respects_bounds(self, rng):
        sampler = BoundedParetoSampler(alpha=1.0, lower=10.0, upper=1000.0)
        for _ in range(500):
            value = sampler.sample(rng)
            assert 10.0 <= value <= 1000.0

    def test_heavy_tail_mass_near_lower(self, rng):
        sampler = BoundedParetoSampler(alpha=1.5, lower=1.0, upper=100.0)
        draws = [sampler.sample(rng) for _ in range(2000)]
        below_ten = sum(1 for v in draws if v < 10.0) / len(draws)
        assert below_ten > 0.8  # most mass near the lower bound

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            BoundedParetoSampler(alpha=0.0, lower=1.0, upper=2.0)
        with pytest.raises(WorkloadError):
            BoundedParetoSampler(alpha=1.0, lower=0.0, upper=2.0)
        with pytest.raises(WorkloadError):
            BoundedParetoSampler(alpha=1.0, lower=5.0, upper=5.0)


class TestEmpiricalSampler:
    def test_single_observation(self, rng):
        sampler = EmpiricalSampler([42.0])
        assert sampler.sample(rng) == 42.0
        assert sampler.quantile(0.3) == 42.0

    def test_samples_within_observed_range(self, rng):
        sampler = EmpiricalSampler([1.0, 5.0, 9.0])
        for _ in range(200):
            assert 1.0 <= sampler.sample(rng) <= 9.0

    def test_quantiles(self):
        sampler = EmpiricalSampler([0.0, 10.0])
        assert sampler.quantile(0.0) == 0.0
        assert sampler.quantile(0.5) == pytest.approx(5.0)
        assert sampler.quantile(1.0) == 10.0

    def test_quantile_out_of_range(self):
        with pytest.raises(WorkloadError):
            EmpiricalSampler([1.0]).quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            EmpiricalSampler([])

    def test_non_finite_rejected(self):
        with pytest.raises(WorkloadError):
            EmpiricalSampler([1.0, float("inf")])

    def test_len(self):
        assert len(EmpiricalSampler([1.0, 2.0, 3.0])) == 3
