"""Tests for the declarative fault plans."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigError
from repro.faults.plan import (
    BrownoutSpec,
    FaultPlan,
    GilbertElliott,
    PartitionWindow,
)


class TestValidation:
    def test_loss_rate_bounds(self):
        with pytest.raises(ConfigError):
            FaultPlan(loss_rate=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(loss_rate=1.5)

    def test_jitter_nonnegative(self):
        with pytest.raises(ConfigError):
            FaultPlan(jitter=-0.01)

    @pytest.mark.parametrize(
        "field", ["loss_good", "loss_bad", "p_good_to_bad", "p_bad_to_good"]
    )
    def test_burst_probabilities(self, field):
        with pytest.raises(ConfigError):
            GilbertElliott(**{field: 1.1})

    def test_brownout_nonnegative(self):
        with pytest.raises(ConfigError):
            BrownoutSpec(rate=-1.0)
        with pytest.raises(ConfigError):
            BrownoutSpec(rate=1.0, duration=-5.0)

    def test_partition_window_ordering(self):
        with pytest.raises(ConfigError):
            PartitionWindow(start=10.0, end=10.0)
        with pytest.raises(ConfigError):
            PartitionWindow(start=-1.0, end=5.0)
        with pytest.raises(ConfigError):
            PartitionWindow(start=0.0, end=5.0, fraction=2.0)

    def test_partitions_must_be_tuple(self):
        window = PartitionWindow(start=0.0, end=5.0)
        with pytest.raises(ConfigError):
            FaultPlan(partitions=[window])


class TestNoop:
    def test_default_plan_is_noop(self):
        assert FaultPlan().is_noop()

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(loss_rate=0.01),
            FaultPlan(jitter=0.1),
            FaultPlan(burst=GilbertElliott(loss_good=0.05)),
            FaultPlan(
                burst=GilbertElliott(loss_bad=0.9, p_good_to_bad=0.01)
            ),
            FaultPlan(brownouts=BrownoutSpec(rate=0.001, duration=30.0)),
            FaultPlan(partitions=(PartitionWindow(start=0.0, end=10.0),)),
        ],
        ids=["loss", "jitter", "burst-good", "burst-bad", "brownout", "cut"],
    )
    def test_any_active_source_defeats_noop(self, plan):
        assert not plan.is_noop()

    def test_unreachable_bad_state_is_noop(self):
        # loss_bad > 0 but the chain can never leave the good state.
        burst = GilbertElliott(loss_bad=0.9, p_good_to_bad=0.0)
        assert not burst.enabled
        assert FaultPlan(burst=burst).is_noop()

    def test_zero_duration_brownout_is_noop(self):
        assert FaultPlan(brownouts=BrownoutSpec(rate=5.0)).is_noop()


class TestPlumbing:
    def test_with_returns_modified_copy(self):
        base = FaultPlan(loss_rate=0.1)
        bumped = base.with_(loss_rate=0.2, jitter=0.05)
        assert base.loss_rate == 0.1
        assert bumped.loss_rate == 0.2
        assert bumped.jitter == 0.05

    def test_plans_hash_and_pickle(self):
        plan = FaultPlan(
            loss_rate=0.05,
            jitter=0.02,
            burst=GilbertElliott(loss_bad=0.5, p_good_to_bad=0.1),
            brownouts=BrownoutSpec(rate=0.01, duration=20.0),
            partitions=(PartitionWindow(start=5.0, end=25.0, salt=3),),
        )
        assert hash(plan) == hash(plan)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_partition_covers_half_open(self):
        window = PartitionWindow(start=5.0, end=10.0)
        assert not window.covers(4.999)
        assert window.covers(5.0)
        assert window.covers(9.999)
        assert not window.covers(10.0)
