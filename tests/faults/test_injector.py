"""Tests for the runtime fault injector."""

from __future__ import annotations

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BrownoutSpec,
    FaultPlan,
    GilbertElliott,
    PartitionWindow,
)
from repro.sim.rng import RngRegistry


def make(plan: FaultPlan, seed: int = 42) -> FaultInjector:
    injector = FaultInjector.from_plan(plan, RngRegistry(seed))
    assert injector is not None
    return injector


class TestFromPlan:
    def test_none_plan_gives_none(self):
        assert FaultInjector.from_plan(None, RngRegistry(1)) is None

    def test_noop_plan_gives_none(self):
        assert FaultInjector.from_plan(FaultPlan(), RngRegistry(1)) is None

    def test_active_plan_gives_injector(self):
        injector = FaultInjector.from_plan(
            FaultPlan(loss_rate=0.5), RngRegistry(1)
        )
        assert isinstance(injector, FaultInjector)


class TestIndependentLoss:
    def test_certain_loss_drops_everything(self):
        injector = make(FaultPlan(loss_rate=1.0))
        assert all(injector.should_drop(1, 2, t) for t in range(20))
        assert injector.drops_loss == 20

    def test_same_seed_replays_decisions(self):
        plan = FaultPlan(loss_rate=0.3)
        a, b = make(plan, seed=7), make(plan, seed=7)
        decisions_a = [a.should_drop(1, 2, float(t)) for t in range(200)]
        decisions_b = [b.should_drop(1, 2, float(t)) for t in range(200)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seeds_diverge(self):
        plan = FaultPlan(loss_rate=0.5)
        a, b = make(plan, seed=7), make(plan, seed=8)
        assert [a.should_drop(1, 2, 0.0) for _ in range(64)] != [
            b.should_drop(1, 2, 0.0) for _ in range(64)
        ]


class TestBurstLoss:
    def test_absorbing_bad_state_loses_everything(self):
        # good->bad is certain and bad is absorbing with certain loss, so
        # every probe (the chain steps before the loss draw) is dropped.
        plan = FaultPlan(
            burst=GilbertElliott(
                loss_bad=1.0, p_good_to_bad=1.0, p_bad_to_good=0.0
            )
        )
        injector = make(plan)
        assert all(injector.should_drop(1, 2, float(t)) for t in range(10))
        assert injector.drops_burst == 10

    def test_good_state_loss_applies(self):
        plan = FaultPlan(
            burst=GilbertElliott(loss_good=1.0, p_good_to_bad=0.0)
        )
        injector = make(plan)
        assert all(injector.should_drop(1, 2, float(t)) for t in range(5))

    def test_losses_cluster_more_than_independent(self):
        """Same long-run loss rate, but bad-state losses arrive in runs."""
        plan = FaultPlan(
            burst=GilbertElliott(
                loss_good=0.0,
                loss_bad=1.0,
                p_good_to_bad=0.05,
                p_bad_to_good=0.5,
            )
        )
        injector = make(plan, seed=3)
        drops = [injector.should_drop(1, 2, float(t)) for t in range(4000)]
        losses = sum(drops)
        runs = sum(
            1
            for i, dropped in enumerate(drops)
            if dropped and (i == 0 or not drops[i - 1])
        )
        assert losses > 0
        # Mean loss-run length > 1 probe: the signature of burstiness an
        # independent Bernoulli channel (run length ~1/(1-p)≈1) lacks.
        assert losses / runs > 1.5


class TestBrownouts:
    PLAN = FaultPlan(brownouts=BrownoutSpec(rate=0.05, duration=10.0))

    def test_stall_verdicts_are_order_independent(self):
        """Two probers racing to the same peer must agree on its state."""
        times = [37.0, 1.0, 402.5, 88.25, 12.0, 955.0, 402.5, 3.125]
        forward = make(self.PLAN, seed=11)
        shuffled = make(self.PLAN, seed=11)
        expected = {t: forward.should_drop(1, 9, t) for t in sorted(set(times))}
        for t in times:
            assert shuffled.should_drop(1, 9, t) == expected[t]

    def test_schedules_differ_per_address(self):
        injector = make(self.PLAN, seed=11)
        verdicts = {
            dst: [injector.should_drop(1, dst, float(t)) for t in range(500)]
            for dst in (2, 3, 4, 5)
        }
        assert any(any(v) for v in verdicts.values())
        assert len({tuple(v) for v in verdicts.values()}) > 1

    def test_drops_attributed_to_brownout(self):
        injector = make(
            FaultPlan(brownouts=BrownoutSpec(rate=10.0, duration=100.0))
        )
        assert injector.should_drop(1, 2, 50.0)
        assert injector.drops_brownout == 1


class TestPartitions:
    WINDOW = PartitionWindow(start=100.0, end=200.0, fraction=0.5, salt=9)

    def test_cut_only_inside_window(self):
        plan = FaultPlan(partitions=(self.WINDOW,))
        injector = make(plan)
        # Find a pair on opposite sides.
        pair = next(
            (a, b)
            for a in range(10)
            for b in range(10, 20)
            if injector._side(0, a) != injector._side(0, b)
        )
        assert not injector.should_drop(*pair, 99.9)
        assert injector.should_drop(*pair, 100.0)
        assert injector.should_drop(*pair, 199.9)
        assert not injector.should_drop(*pair, 200.0)
        assert injector.drops_partition == 2

    def test_cut_is_symmetric(self):
        injector = make(FaultPlan(partitions=(self.WINDOW,)))
        for a in range(8):
            for b in range(8):
                assert injector.should_drop(
                    a, b, 150.0
                ) == injector.should_drop(b, a, 150.0)

    def test_same_side_pairs_unaffected(self):
        injector = make(FaultPlan(partitions=(self.WINDOW,)))
        same = [
            (a, b)
            for a in range(20)
            for b in range(20)
            if injector._side(0, a) == injector._side(0, b)
        ]
        assert same
        assert not any(injector.should_drop(a, b, 150.0) for a, b in same)

    def test_sides_are_pure_across_injectors(self):
        plan = FaultPlan(partitions=(self.WINDOW,))
        a, b = make(plan, seed=1), make(plan, seed=999)
        # Sides hash (salt, address) only — even the fault seed is
        # irrelevant, so repeated runs agree on the cut.
        assert [a._side(0, addr) for addr in range(64)] == [
            b._side(0, addr) for addr in range(64)
        ]

    def test_fraction_zero_never_cuts(self):
        window = PartitionWindow(start=0.0, end=1e9, fraction=0.0)
        injector = make(FaultPlan(partitions=(window,)))
        assert not any(
            injector.should_drop(a, b, 5.0)
            for a in range(10)
            for b in range(10)
        )


class TestJitter:
    def test_no_jitter_without_plan(self):
        injector = make(FaultPlan(loss_rate=0.5))
        assert injector.extra_rtt() == 0.0

    def test_jitter_bounded(self):
        injector = make(FaultPlan(jitter=0.25))
        draws = [injector.extra_rtt() for _ in range(200)]
        assert all(0.0 <= d < 0.25 for d in draws)
        assert len(set(draws)) > 1
