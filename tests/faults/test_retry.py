"""Tests for probe retry policies and the retry driver."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.errors import ConfigError
from repro.faults.retry import RetriedProbe, RetryPolicy, probe_with_retry
from repro.network.transport import ProbeOutcome, ProbeStatus


class ScriptedTransport:
    """Replays a fixed outcome sequence; records every (dst, time) send."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.sent = []

    def probe(self, src, dst, message, time):
        self.sent.append((dst, time))
        return self.outcomes.pop(0)


def timeout(rtt=0.2, spurious=False):
    return ProbeOutcome(
        status=ProbeStatus.TIMEOUT, rtt=rtt, spurious=spurious
    )


def delivered(rtt=0.05, response="pong"):
    return ProbeOutcome(
        status=ProbeStatus.DELIVERED, response=response, rtt=rtt
    )


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff="quadratic")
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)

    def test_enabled(self):
        assert not RetryPolicy().enabled
        assert RetryPolicy(max_attempts=2).enabled

    def test_fixed_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff="fixed", base_delay=0.3)
        assert [policy.delay(i) for i in range(3)] == [0.3, 0.3, 0.3]

    def test_exponential_backoff_schedule(self):
        policy = RetryPolicy(
            max_attempts=4,
            backoff="exponential",
            base_delay=0.1,
            multiplier=2.0,
        )
        assert [policy.delay(i) for i in range(3)] == pytest.approx(
            [0.1, 0.2, 0.4]
        )

    def test_from_protocol_defaults_base_to_probe_spacing(self):
        protocol = ProtocolParams(probe_retries=2)
        policy = RetryPolicy.from_protocol(protocol)
        assert policy.max_attempts == 3
        assert policy.base_delay == protocol.probe_spacing

    def test_from_protocol_explicit_knobs(self):
        protocol = ProtocolParams(
            probe_retries=1,
            retry_backoff="exponential",
            retry_base=0.5,
            retry_multiplier=3.0,
        )
        policy = RetryPolicy.from_protocol(protocol)
        assert policy == RetryPolicy(
            max_attempts=2,
            backoff="exponential",
            base_delay=0.5,
            multiplier=3.0,
        )


class TestProbeWithRetry:
    POLICY = RetryPolicy(max_attempts=3, backoff="fixed", base_delay=0.1)

    def test_immediate_delivery_passes_outcome_through_untouched(self):
        outcome = delivered()
        transport = ScriptedTransport([outcome])
        result = probe_with_retry(transport, self.POLICY, 1, 2, "m", 10.0)
        assert result == RetriedProbe(
            outcome=outcome, attempts=1, recovered=False, delay=0.0
        )
        assert result.outcome is outcome  # bit-identical fast path
        assert result.retries == 0

    def test_disabled_policy_never_retries(self):
        transport = ScriptedTransport([timeout()])
        result = probe_with_retry(transport, RetryPolicy(), 1, 2, "m", 0.0)
        assert result.attempts == 1
        assert not result.recovered
        assert transport.sent == [(2, 0.0)]

    def test_recovery_charges_full_wait(self):
        """Retried sends happen later, and the RTT covers the whole wait."""
        transport = ScriptedTransport([timeout(rtt=0.2), delivered(rtt=0.05)])
        result = probe_with_retry(transport, self.POLICY, 1, 2, "m", 10.0)
        assert result.recovered
        assert result.attempts == 2
        # Gap = first attempt's timeout (0.2) + backoff (0.1).
        assert result.delay == pytest.approx(0.3)
        assert transport.sent == [(2, 10.0), (2, pytest.approx(10.3))]
        # Final RTT = whole wait + final round trip.
        assert result.outcome.rtt == pytest.approx(0.35)
        assert result.outcome.status is ProbeStatus.DELIVERED

    def test_refusal_counts_as_recovery(self):
        refused = ProbeOutcome(
            status=ProbeStatus.REFUSED, response="busy", rtt=0.05
        )
        transport = ScriptedTransport([timeout(), refused])
        result = probe_with_retry(transport, self.POLICY, 1, 2, "m", 0.0)
        assert result.recovered
        assert result.outcome.status is ProbeStatus.REFUSED

    def test_exhausted_budget_accumulates_every_timeout(self):
        transport = ScriptedTransport([timeout(rtt=0.2)] * 3)
        result = probe_with_retry(transport, self.POLICY, 1, 2, "m", 0.0)
        assert result.attempts == 3
        assert not result.recovered
        # Sends at 0, 0.3, 0.6; final RTT = 0.6 of waiting + 0.2 timeout.
        assert [t for _, t in transport.sent] == pytest.approx(
            [0.0, 0.3, 0.6]
        )
        assert result.delay == pytest.approx(0.6)
        assert result.outcome.rtt == pytest.approx(0.8)
        assert result.outcome.status is ProbeStatus.TIMEOUT

    def test_spurious_flag_survives_rtt_repricing(self):
        transport = ScriptedTransport(
            [timeout(), timeout(), timeout(spurious=True)]
        )
        result = probe_with_retry(transport, self.POLICY, 1, 2, "m", 0.0)
        assert result.outcome.spurious

    def test_exponential_backoff_spaces_attempts(self):
        policy = RetryPolicy(
            max_attempts=3,
            backoff="exponential",
            base_delay=0.1,
            multiplier=2.0,
        )
        transport = ScriptedTransport([timeout(rtt=0.2)] * 3)
        probe_with_retry(transport, policy, 1, 2, "m", 0.0)
        # Gaps: 0.2+0.1, then 0.2+0.2.
        assert [t for _, t in transport.sent] == pytest.approx(
            [0.0, 0.3, 0.7]
        )
