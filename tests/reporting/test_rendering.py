"""Tests for ASCII table and series rendering."""

from __future__ import annotations

import pytest

from repro.reporting.series import format_series_block
from repro.reporting.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "b"], [[1, 2], [30, 40]])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert "| " in lines[1]
        # All lines are equally wide.
        assert len({len(line) for line in lines}) == 1

    def test_title_included(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_header_present(self):
        text = format_table(["alpha", "beta"], [[1, 2]])
        assert "alpha" in text and "beta" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456], [12.3456], [1234.5]])
        assert "0.1235" in text
        assert "12.35" in text
        assert "1234.5" in text

    def test_bool_formatting(self):
        text = format_table(["x"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_integral_float_renders_as_int(self):
        assert " 5 " in format_table(["x"], [[5.0]])

    def test_nan(self):
        assert "nan" in format_table(["x"], [[float("nan")]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeriesBlock:
    def test_aligned_on_shared_x(self):
        text = format_series_block(
            {"s1": [(1, 10.0), (2, 20.0)], "s2": [(1, 1.0), (2, 2.0)]},
            x_label="x",
        )
        assert "s1" in text and "s2" in text and "x" in text

    def test_missing_cells_dashed(self):
        text = format_series_block(
            {"s1": [(1, 10.0)], "s2": [(2, 2.0)]}, x_label="x"
        )
        assert "-" in text

    def test_x_values_sorted(self):
        text = format_series_block(
            {"s": [(3, 1.0), (1, 2.0), (2, 3.0)]}, x_label="x"
        )
        rows = text.splitlines()[3:-1]
        xs = [float(row.split("|")[1]) for row in rows]
        assert xs == sorted(xs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_series_block({}, x_label="x")
