"""Edge cases for table cell rendering and layout validation."""

from __future__ import annotations

import pytest

from repro.reporting.tables import _render_cell, format_table


class TestRenderCellTiers:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [
            (True, "yes"),
            (False, "no"),
            (float("nan"), "nan"),
            (3.0, "3"),  # integral float collapses to int text
            (-7.0, "-7"),
            (1e12, "1000000000000.0"),  # too big to trust int collapse
            (123.456, "123.5"),  # >= 100: one decimal
            (-250.04, "-250.0"),
            (2.345, "2.35"),  # >= 1: two decimals
            (0.98765, "0.9877"),  # < 1: four decimals
            (-0.5, "-0.5000"),
            (7, "7"),  # plain ints untouched
            ("label", "label"),
            (None, "None"),
        ],
    )
    def test_tier(self, value, expected):
        assert _render_cell(value) == expected


class TestFormatTableEdges:
    def test_narrow_column_padded_to_header(self):
        text = format_table(("a-very-wide-header",), ((1,),))
        data = [line for line in text.splitlines() if line.startswith("| ")][1]
        assert len(data) == len("| a-very-wide-header |")

    def test_wide_cell_stretches_header(self):
        text = format_table(("x",), (("stretchy-cell-value",),))
        header = [line for line in text.splitlines() if line.startswith("| ")][0]
        assert len(header) == len("| stretchy-cell-value |")

    def test_row_width_mismatch_names_the_row(self):
        with pytest.raises(ValueError, match=r"row width 3"):
            format_table(("a", "b"), ((1, 2), (1, 2, 3)))

    def test_zero_rows_with_title(self):
        text = format_table(("a", "b"), (), title="empty table")
        lines = text.splitlines()
        assert lines[0] == "empty table"
        # title + top rule + header + header rule + bottom rule.
        assert len(lines) == 5
        assert lines[-1] == lines[-2]

    def test_mixed_types_in_one_column(self):
        text = format_table(
            ("value",), ((True,), (float("nan"),), (0.25,), ("-",))
        )
        cells = [
            line.split("|")[1].strip()
            for line in text.splitlines()
            if line.startswith("| ")
        ][1:]
        assert cells == ["yes", "nan", "0.2500", "-"]
