"""Edge cases for series rendering beyond the basic-layout tests."""

from __future__ import annotations

import pytest

from repro.reporting.series import format_series_block


class TestEdgeCases:
    def test_single_point_series(self):
        text = format_series_block({"only": [(2.0, 0.5)]}, x_label="x")
        lines = text.splitlines()
        # header + one data row, framed by three rules.
        assert sum(line.startswith("+-") for line in lines) == 3
        assert sum(line.startswith("| ") for line in lines) == 2
        assert "0.5000" in text

    def test_fully_disjoint_x_supports(self):
        text = format_series_block(
            {"a": [(1.0, 10.0)], "b": [(2.0, 20.0)]}, x_label="x"
        )
        rows = [line for line in text.splitlines() if line.startswith("| ")]
        header, row_x1, row_x2 = rows
        # Each series only populates its own row; the other is dashed.
        assert row_x1.split("|")[2].strip() == "10"
        assert row_x1.split("|")[3].strip() == "-"
        assert row_x2.split("|")[2].strip() == "-"
        assert row_x2.split("|")[3].strip() == "20"

    def test_disjoint_supports_union_sorted(self):
        text = format_series_block(
            {"a": [(5.0, 1.0), (1.0, 1.0)], "b": [(3.0, 2.0)]}, x_label="x"
        )
        rows = [line for line in text.splitlines() if line.startswith("| ")]
        xs = [row.split("|")[1].strip() for row in rows[1:]]
        assert xs == ["1", "3", "5"]

    def test_series_with_no_points_yields_headers_only(self):
        # A named series with an empty point list is not an error; it
        # contributes a column and no rows.
        text = format_series_block({"empty": []}, x_label="x")
        lines = text.splitlines()
        assert sum(line.startswith("| ") for line in lines) == 1  # header
        assert "empty" in lines[1]

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError):
            format_series_block({}, x_label="x")

    def test_title_propagates(self):
        text = format_series_block(
            {"a": [(1.0, 2.0)]}, x_label="x", title="fig999"
        )
        assert text.splitlines()[0] == "fig999"

    def test_duplicate_x_last_value_wins(self):
        text = format_series_block(
            {"a": [(1.0, 3.0), (1.0, 4.0)]}, x_label="x"
        )
        rows = [line for line in text.splitlines() if line.startswith("| ")]
        assert len(rows) == 2  # header + one collapsed row
        assert rows[1].split("|")[2].strip() == "4"
