"""Tests for run manifests: capture, round-trips, replay, verification."""

from __future__ import annotations

import json

import pytest

from repro.core.params import BadPongBehavior, ProtocolParams, SystemParams
from repro.experiments.runner import run_guess_config
from repro.faults.plan import (
    BrownoutSpec,
    FaultPlan,
    GilbertElliott,
    PartitionWindow,
)
from repro.observe.manifest import (
    MANIFEST_VERSION,
    ManifestRecorder,
    activated,
    active_manifest_recorder,
    faults_from_jsonable,
    faults_to_jsonable,
    load_manifest,
    main,
    protocol_from_jsonable,
    protocol_to_jsonable,
    replay_config,
    resilience_from_jsonable,
    resilience_to_jsonable,
    scenarios_from_jsonable,
    scenarios_to_jsonable,
    system_from_jsonable,
    system_to_jsonable,
    verify_manifest,
    write_manifest,
)
from repro.resilience import (
    BreakerSpec,
    ChurnStorm,
    FlashCrowd,
    ResiliencePolicy,
    ScenarioPlan,
)
from repro.sim.rng import derive_seed

#: Full-featured fault plan: every nested spec populated.
RICH_FAULTS = FaultPlan(
    loss_rate=0.05,
    burst=GilbertElliott(
        loss_good=0.01, loss_bad=0.4, p_good_to_bad=0.02, p_bad_to_good=0.3
    ),
    jitter=0.02,
    brownouts=BrownoutSpec(rate=0.001, duration=30.0),
    partitions=(
        PartitionWindow(start=10.0, end=20.0, fraction=0.25, salt=3),
        PartitionWindow(start=40.0, end=50.0),
    ),
)

SMALL_SYSTEM = SystemParams(network_size=40)
SMALL_KW = dict(duration=20.0, warmup=0.0, trials=2, base_seed=9)


class TestParamRoundTrips:
    def test_system_round_trips_with_enum(self):
        system = SystemParams(
            network_size=77,
            percent_bad_peers=12.5,
            bad_pong_behavior=BadPongBehavior.BAD,
        )
        data = json.loads(json.dumps(system_to_jsonable(system)))
        assert system_from_jsonable(data) == system

    def test_protocol_round_trips(self):
        protocol = ProtocolParams(cache_size=17, probe_retries=2)
        data = json.loads(json.dumps(protocol_to_jsonable(protocol)))
        assert protocol_from_jsonable(data) == protocol

    def test_faults_none_passthrough(self):
        assert faults_to_jsonable(None) is None
        assert faults_from_jsonable(None) is None

    def test_rich_fault_plan_round_trips(self):
        data = json.loads(json.dumps(faults_to_jsonable(RICH_FAULTS)))
        assert faults_from_jsonable(data) == RICH_FAULTS

    def test_scenarios_none_passthrough(self):
        assert scenarios_to_jsonable(None) is None
        assert scenarios_from_jsonable(None) is None

    def test_scenario_plan_round_trips(self):
        plan = ScenarioPlan(
            storms=(
                ChurnStorm(start=100.0, width=20.0, fraction=0.4),
                ChurnStorm(start=200.0, width=5.0, fraction=0.0),
            ),
            crowds=(FlashCrowd(start=100.0, end=300.0, multiplier=5.0),),
        )
        data = json.loads(json.dumps(scenarios_to_jsonable(plan)))
        assert scenarios_from_jsonable(data) == plan

    def test_resilience_none_passthrough(self):
        assert resilience_to_jsonable(None) is None
        assert resilience_from_jsonable(None) is None

    def test_resilience_policy_round_trips(self):
        for policy in (
            ResiliencePolicy.all_on(),
            ResiliencePolicy(breaker=BreakerSpec(failure_threshold=5)),
            ResiliencePolicy(),
        ):
            data = json.loads(json.dumps(resilience_to_jsonable(policy)))
            assert resilience_from_jsonable(data) == policy


class TestRecorderCapture:
    def test_inactive_by_default(self):
        assert active_manifest_recorder() is None

    def test_run_guess_config_records_one_entry_with_digests(self):
        recorder = ManifestRecorder()
        with activated(recorder):
            assert active_manifest_recorder() is recorder
            reports = run_guess_config(
                SMALL_SYSTEM, ProtocolParams(), **SMALL_KW
            )
        assert active_manifest_recorder() is None
        (entry,) = recorder.configs
        assert entry["trials"] == 2
        assert entry["seeds"] == [
            derive_seed(9, "trial:0"), derive_seed(9, "trial:1")
        ]
        # An active recorder forces trace hashing on every trial.
        assert entry["trace_digests"] == [r.trace_digest for r in reports]
        assert all(
            isinstance(digest, str) for digest in entry["trace_digests"]
        )

    def test_untracked_run_records_nothing(self):
        recorder = ManifestRecorder()
        run_guess_config(SMALL_SYSTEM, ProtocolParams(), **SMALL_KW)
        assert recorder.configs == []

    def test_build_shape(self):
        recorder = ManifestRecorder()
        manifest = recorder.build(
            profile="smoke",
            suites=["packet_loss"],
            workers=1,
            wall_clock_seconds=1.5,
            command=["python", "-m", "repro.experiments.run_all"],
        )
        from repro import __version__

        assert manifest["manifest_version"] == MANIFEST_VERSION
        assert manifest["package_version"] == __version__
        assert manifest["profile"] == "smoke"
        assert manifest["configs"] == []
        assert manifest["command"][-1] == "repro.experiments.run_all"


@pytest.fixture(scope="module")
def recorded():
    """One tiny recorded run shared by the replay/verify tests."""
    recorder = ManifestRecorder()
    with activated(recorder):
        run_guess_config(
            SMALL_SYSTEM,
            ProtocolParams(probe_retries=1),
            faults=FaultPlan(loss_rate=0.05),
            **SMALL_KW,
        )
    return recorder.build(
        profile="micro", suites=["packet_loss"], workers=1,
        wall_clock_seconds=0.0,
    )


class TestReplayAndVerify:
    def test_write_load_round_trip(self, recorded, tmp_path):
        path = tmp_path / "manifest.json"
        write_manifest(path, recorded)
        assert load_manifest(path) == recorded
        # And the manifest survives a plain JSON round-trip.
        assert json.loads(json.dumps(recorded)) == recorded

    def test_replay_reproduces_digests(self, recorded):
        (entry,) = recorded["configs"]
        assert replay_config(entry) == tuple(entry["trace_digests"])

    def test_verify_ok(self, recorded):
        assert verify_manifest(recorded) == []

    def test_verify_flags_tampered_digest(self, recorded):
        tampered = json.loads(json.dumps(recorded))
        tampered["configs"][0]["trace_digests"][0] = "0" * 32
        problems = verify_manifest(tampered)
        assert len(problems) == 1
        assert "diverge" in problems[0]

    def test_verify_flags_tampered_seed(self, recorded):
        tampered = json.loads(json.dumps(recorded))
        tampered["configs"][0]["seeds"][0] += 1
        problems = verify_manifest(tampered)
        assert len(problems) == 1
        assert "re-derive" in problems[0]

    def test_scenario_free_entries_record_nulls(self, recorded):
        (entry,) = recorded["configs"]
        assert entry["scenarios"] is None
        assert entry["resilience"] is None
        assert entry["satisfaction_window"] is None

    def test_cli_ok_and_failure(self, recorded, tmp_path, capsys):
        good = tmp_path / "good.json"
        write_manifest(good, recorded)
        assert main([str(good)]) == 0
        assert "manifest OK" in capsys.readouterr().out

        tampered = json.loads(json.dumps(recorded))
        tampered["configs"][0]["trace_digests"][0] = "0" * 32
        bad = tmp_path / "bad.json"
        write_manifest(bad, tampered)
        assert main([str(bad)]) == 1
        assert "diverge" in capsys.readouterr().out


class TestScenarioReplay:
    """A recorded scenario run must round-trip and replay bit-for-bit."""

    PLAN = ScenarioPlan(
        storms=(ChurnStorm(start=5.0, width=5.0, fraction=0.4),),
        crowds=(FlashCrowd(start=5.0, end=15.0, multiplier=3.0),),
    )

    @pytest.fixture(scope="class")
    def recorded(self):
        recorder = ManifestRecorder()
        with activated(recorder):
            run_guess_config(
                SMALL_SYSTEM,
                ProtocolParams(probe_retries=1),
                scenarios=self.PLAN,
                resilience=ResiliencePolicy.all_on(),
                satisfaction_window=10.0,
                **SMALL_KW,
            )
        return recorder.build(
            profile="micro", suites=["churn_storm"], workers=1,
            wall_clock_seconds=0.0,
        )

    def test_entry_records_the_plan(self, recorded):
        (entry,) = recorded["configs"]
        assert scenarios_from_jsonable(entry["scenarios"]) == self.PLAN
        assert (
            resilience_from_jsonable(entry["resilience"])
            == ResiliencePolicy.all_on()
        )
        assert entry["satisfaction_window"] == 10.0

    def test_json_round_trip_preserves_entry(self, recorded):
        assert json.loads(json.dumps(recorded)) == recorded

    def test_replay_reproduces_scenario_digests(self, recorded):
        (entry,) = recorded["configs"]
        assert replay_config(entry) == tuple(entry["trace_digests"])

    def test_verify_ok(self, recorded):
        assert verify_manifest(recorded) == []

    def test_old_manifest_without_scenario_keys_still_replays(
        self, recorded
    ):
        # Forward compatibility with pre-resilience manifests: entries
        # that predate the scenario keys replay as scenario-free runs.
        recorder = ManifestRecorder()
        with activated(recorder):
            run_guess_config(SMALL_SYSTEM, ProtocolParams(), **SMALL_KW)
        (entry,) = recorder.configs
        legacy = {
            key: value
            for key, value in entry.items()
            if key not in ("scenarios", "resilience", "satisfaction_window")
        }
        assert replay_config(legacy) == tuple(legacy["trace_digests"])
