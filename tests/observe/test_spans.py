"""Unit + integration tests for query-span recording."""

from __future__ import annotations

import io
import json

import pytest

from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.errors import ConfigError
from repro.observe.plan import ObservationPlan
from repro.observe.spans import (
    ORIGIN_LINK,
    ORIGIN_QUERY,
    STATUS_BLOCKED,
    STATUS_DELIVERED,
    STATUS_REFUSED,
    STATUS_TIMEOUT,
    ProbeRecord,
    QuerySpan,
    SpanRecorder,
)

STATUSES = {STATUS_DELIVERED, STATUS_TIMEOUT, STATUS_REFUSED, STATUS_BLOCKED}
ORIGINS = {ORIGIN_LINK, ORIGIN_QUERY}


class _Result:
    """Duck-typed stand-in for QueryResult in unit tests."""

    def __init__(self):
        self.satisfied = True
        self.results = 3
        self.duration = 1.25
        self.response_time = 0.4
        self.pool_exhausted = False


def _finished_span(recorder, peer=1, time=10.0):
    span = recorder.begin(peer, 42, time)
    recorder.finish(span, _Result())
    return span


class TestQuerySpan:
    def test_record_probe_assigns_contiguous_indices(self):
        span = QuerySpan(query_id=0, peer=1, target_file=42, start=0.0)
        for target in (7, 8):
            span.record_probe(
                wave=0,
                time=0.0,
                target=target,
                origin=ORIGIN_LINK,
                status=STATUS_DELIVERED,
            )
        assert [probe.index for probe in span.probes] == [0, 1]

    def test_as_dict_includes_probes(self):
        span = QuerySpan(query_id=3, peer=1, target_file=42, start=5.0)
        span.record_probe(
            wave=0, time=5.0, target=9, origin=ORIGIN_QUERY,
            status=STATUS_TIMEOUT, rtt=0.2, evicted=True,
            eviction_cause="dead",
        )
        data = span.as_dict()
        assert data["query_id"] == 3
        assert data["probes"][0]["eviction_cause"] == "dead"

    def test_probe_record_as_dict(self):
        record = ProbeRecord(
            index=0, wave=1, time=2.0, target=5,
            origin=ORIGIN_LINK, status=STATUS_REFUSED,
        )
        data = record.as_dict()
        assert data["wave"] == 1
        assert data["status"] == STATUS_REFUSED


class TestSpanRecorder:
    def test_ids_monotonic_and_counts_track(self):
        recorder = SpanRecorder()
        spans = [_finished_span(recorder) for _ in range(3)]
        assert [span.query_id for span in spans] == [0, 1, 2]
        assert recorder.started == recorder.completed == 3
        assert recorder.dropped == 0
        assert len(recorder) == 3
        assert all(span.completed for span in recorder)

    def test_finish_seals_from_result(self):
        recorder = SpanRecorder()
        span = _finished_span(recorder)
        assert span.satisfied is True
        assert span.results == 3
        assert span.duration == 1.25
        assert span.response_time == 0.4
        assert span.pool_exhausted is False

    def test_capacity_ring_drops_oldest_and_counts(self):
        recorder = SpanRecorder(capacity=2)
        for _ in range(3):
            _finished_span(recorder)
        assert len(recorder) == 2
        assert recorder.dropped == 1
        assert [span.query_id for span in recorder.spans] == [1, 2]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            SpanRecorder(capacity=0)

    def test_jsonl_round_trips(self):
        recorder = SpanRecorder()
        span = _finished_span(recorder)
        span.probes.append(
            ProbeRecord(
                index=0, wave=0, time=10.0, target=7,
                origin=ORIGIN_LINK, status=STATUS_DELIVERED,
                rtt=0.18, results=1, pong_entries=10, admitted=4,
            )
        )
        stream = io.StringIO()
        assert recorder.to_jsonl(stream) == 1
        (line,) = stream.getvalue().splitlines()
        decoded = json.loads(line)
        assert decoded == span.as_dict()

    def test_dump_jsonl_writes_file(self, tmp_path):
        recorder = SpanRecorder()
        _finished_span(recorder)
        _finished_span(recorder)
        path = tmp_path / "spans.jsonl"
        assert recorder.dump_jsonl(path) == 2
        lines = path.read_text().splitlines()
        assert [json.loads(line)["query_id"] for line in lines] == [0, 1]


class TestRecorderOnSimulation:
    """Spans captured from a real (tiny) GUESS run are well-formed."""

    @pytest.fixture(scope="class")
    def sim(self):
        sim = GuessSimulation(
            SystemParams(network_size=50),
            ProtocolParams(cache_size=10),
            seed=5,
            observe=ObservationPlan(spans=True),
        )
        sim.run(60.0)
        return sim

    def test_every_query_has_a_sealed_span(self, sim):
        recorder = sim.span_recorder
        assert recorder is not None
        assert len(recorder) > 0
        assert recorder.started == recorder.completed == len(recorder)
        assert recorder.completed == sim.report().queries

    def test_probe_records_well_formed(self, sim):
        for span in sim.span_recorder:
            assert span.completed
            times = [probe.time for probe in span.probes]
            assert times == sorted(times)
            for probe in span.probes:
                assert probe.index == span.probes.index(probe)
                assert probe.status in STATUSES
                assert probe.origin in ORIGINS
                assert probe.wave >= 0
                assert probe.rtt >= 0.0
                if probe.status == STATUS_DELIVERED:
                    assert probe.pong_entries >= probe.admitted >= 0
                if probe.evicted:
                    assert probe.eviction_cause is not None

    def test_first_wave_probes_come_from_link_cache(self, sim):
        # Wave 0 targets are drawn before any pong could be harvested.
        for span in sim.span_recorder:
            for probe in span.probes:
                if probe.wave == 0:
                    assert probe.origin == ORIGIN_LINK

    def test_satisfied_spans_carry_results(self, sim):
        satisfied = [span for span in sim.span_recorder if span.satisfied]
        assert satisfied  # a healthy small network satisfies something
        for span in satisfied:
            assert span.results > 0
            assert span.response_time is not None

    def test_capacity_bounds_retention_on_simulation(self):
        sim = GuessSimulation(
            SystemParams(network_size=50),
            ProtocolParams(cache_size=10),
            seed=5,
            observe=ObservationPlan(spans=True, span_capacity=5),
        )
        sim.run(60.0)
        recorder = sim.span_recorder
        assert len(recorder) == 5
        assert recorder.dropped == recorder.completed - 5
