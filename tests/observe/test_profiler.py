"""Tests for phase-structured profiling and its host hooks."""

from __future__ import annotations

from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.experiments.runner import run_guess_config
from repro.observe.profiler import (
    GLOBAL_PHASE,
    Profiler,
    activated,
    active_profiler,
)


class TestPhases:
    def test_phase_wall_time_accumulates(self):
        profiler = Profiler()
        with profiler.phase("a"):
            pass
        with profiler.phase("a"):
            pass
        assert profiler.phases == ["a"]
        assert profiler._stats["a"].wall_seconds >= 0.0

    def test_samples_attribute_to_current_phase(self):
        profiler = Profiler()
        with profiler.phase("suite"):
            profiler.record_engine(events=100, wall_seconds=0.5, sim_seconds=10.0)
            profiler.record_batch(4, 0.25)
        profiler.record_engine(events=7, wall_seconds=0.1, sim_seconds=1.0)
        assert profiler.phases == ["suite", GLOBAL_PHASE]
        suite = profiler._stats["suite"]
        assert suite.engine_events == 100
        assert suite.batch_items == 4
        assert suite.batches == 1
        assert profiler._stats[GLOBAL_PHASE].engine_events == 7

    def test_nested_phase_restores_previous(self):
        profiler = Profiler()
        with profiler.phase("outer"):
            with profiler.phase("inner"):
                profiler.record_engine(
                    events=1, wall_seconds=0.1, sim_seconds=1.0
                )
            profiler.record_engine(events=2, wall_seconds=0.1, sim_seconds=1.0)
        assert profiler._stats["inner"].engine_events == 1
        assert profiler._stats["outer"].engine_events == 2

    def test_events_per_second(self):
        profiler = Profiler()
        profiler.record_engine(events=100, wall_seconds=0.5, sim_seconds=10.0)
        assert profiler.events_per_second(GLOBAL_PHASE) == 200.0
        assert profiler.events_per_second("missing") is None

    def test_render_lists_phases(self):
        profiler = Profiler()
        with profiler.phase("alpha"):
            profiler.record_engine(
                events=50, wall_seconds=0.5, sim_seconds=25.0
            )
        with profiler.phase("beta"):
            pass
        text = profiler.render()
        assert "profile report" in text
        assert "alpha" in text
        assert "beta" in text
        assert "events/s" in text
        # A phase without engine samples renders nan rates, not a crash.
        assert "nan" in text


class TestActivation:
    def test_inactive_by_default(self):
        assert active_profiler() is None

    def test_activated_installs_and_restores(self):
        profiler = Profiler()
        with activated(profiler) as installed:
            assert installed is profiler
            assert active_profiler() is profiler
            inner = Profiler()
            with activated(inner):
                assert active_profiler() is inner
            assert active_profiler() is profiler
        assert active_profiler() is None


class TestEngineHook:
    def test_simulator_records_engine_samples(self):
        profiler = Profiler()
        sim = GuessSimulation(
            SystemParams(network_size=40), ProtocolParams(), seed=3
        )
        sim.engine.profiler = profiler
        sim.run(30.0)
        stats = profiler._stats[GLOBAL_PHASE]
        assert stats.engine_samples == 1
        assert stats.engine_events > 0
        assert stats.engine_sim == 30.0
        assert stats.engine_wall > 0.0

    def test_profiling_does_not_change_results(self):
        def run(profiler):
            sim = GuessSimulation(
                SystemParams(network_size=40),
                ProtocolParams(),
                seed=3,
                trace_hash=True,
            )
            if profiler is not None:
                sim.engine.profiler = profiler
            sim.run(30.0)
            return sim.trace_digest, sim.report()

        plain = run(None)
        profiled = run(Profiler())
        assert plain == profiled


class TestExecutorHook:
    def test_run_guess_config_records_batches_and_engine(self):
        profiler = Profiler()
        with activated(profiler):
            reports = run_guess_config(
                SystemParams(network_size=40),
                ProtocolParams(),
                duration=20.0,
                warmup=0.0,
                trials=2,
            )
        assert len(reports) == 2
        stats = profiler._stats[GLOBAL_PHASE]
        assert stats.batches == 1
        assert stats.batch_items == 2
        # Serial trials run in-process, so engine samples flow too.
        assert stats.engine_samples == 2
