"""Unit tests for the metrics registry instruments and windowing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.observe.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowSnapshot,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_bucketing_inclusive_upper_edges(self):
        hist = Histogram("h", bounds=(0.1, 0.2, 0.5))
        for value in (0.05, 0.1, 0.15, 0.2, 0.4, 9.0):
            hist.observe(value)
        # bounds are inclusive: 0.1 lands in the first bucket, 0.2 in
        # the second, and 9.0 overflows.
        assert hist.bucket_counts == [2, 2, 1, 1]
        assert hist.count == 6
        assert hist.sum == pytest.approx(9.9)

    def test_mean_empty_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_mean(self):
        hist = Histogram("h")
        hist.observe(0.1)
        hist.observe(0.3)
        assert hist.mean == pytest.approx(0.2)

    def test_quantile_reports_bucket_upper_bound(self):
        hist = Histogram("h", bounds=(0.1, 0.2, 0.5))
        for value in (0.05, 0.05, 0.15, 0.45):
            hist.observe(value)
        assert hist.quantile(0.5) == 0.1
        assert hist.quantile(1.0) == 0.5

    def test_quantile_overflow_clamps_to_last_bound(self):
        hist = Histogram("h", bounds=(0.1, 0.2))
        hist.observe(99.0)
        assert hist.quantile(1.0) == 0.2

    def test_quantile_empty_is_zero(self):
        assert Histogram("h").quantile(0.9) == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    @pytest.mark.parametrize("bounds", [(), (0.2, 0.1), (0.1, 0.1)])
    def test_bad_bounds_rejected(self, bounds):
        with pytest.raises(ConfigError):
            Histogram("h", bounds=bounds)

    def test_default_buckets_strictly_increasing(self):
        assert all(
            a < b for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        )


class TestGetOrCreate:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ConfigError):
            registry.gauge("a")
        with pytest.raises(ConfigError):
            registry.histogram("a")

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z")
        registry.gauge("a")
        assert registry.names() == ["a", "z"]


class TestLifetimeSnapshot:
    def test_totals_by_sorted_name(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(3)
        registry.gauge("a").set(1.5)
        registry.histogram("c").observe(0.1)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "b", "c"]
        assert snapshot == {"a": 1.5, "b": 3.0, "c": 1.0}


class TestWindowing:
    def test_windowless_advance_is_noop(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.advance(1e9)
        assert registry.window_snapshots == ()

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigError):
            MetricsRegistry(window=0.0)

    def test_window_closes_with_deltas(self):
        registry = MetricsRegistry(window=10.0)
        registry.counter("a").inc(2)
        registry.advance(5.0)  # still inside [0, 10): nothing closes
        assert registry.window_snapshots == ()
        registry.counter("a").inc(3)
        registry.advance(12.0)
        (snap,) = registry.window_snapshots
        assert (snap.start, snap.end) == (0.0, 10.0)
        assert snap.values == {"a": 5.0}

    def test_counter_deltas_reset_per_window(self):
        registry = MetricsRegistry(window=10.0)
        registry.counter("a").inc(5)
        registry.advance(10.0)
        registry.counter("a").inc(1)
        registry.advance(20.0)
        first, second = registry.window_snapshots
        assert first.values == {"a": 5.0}
        assert second.values == {"a": 1.0}

    def test_gauge_reports_level_not_delta(self):
        registry = MetricsRegistry(window=10.0)
        registry.gauge("g").set(7.0)
        registry.advance(10.0)
        registry.advance(20.0)
        first, second = registry.window_snapshots
        assert first.values == {"g": 7.0}
        assert second.values == {"g": 7.0}

    def test_empty_windows_skipped(self):
        registry = MetricsRegistry(window=10.0)
        registry.counter("a").inc()
        registry.advance(10.0)
        # Nothing changed for many windows; hosts advance() before they
        # record, so the next activity lands in the window containing
        # its timestamp, with no all-zero spam in between.
        registry.advance(95.0)
        registry.counter("a").inc()
        registry.advance(105.0)
        snaps = registry.window_snapshots
        assert len(snaps) == 2
        assert (snaps[1].start, snaps[1].end) == (90.0, 100.0)
        assert snaps[1].values == {"a": 1.0}

    def test_stale_timestamps_ignored(self):
        registry = MetricsRegistry(window=10.0)
        registry.counter("a").inc()
        registry.advance(25.0)
        before = registry.window_snapshots
        registry.advance(3.0)  # earlier than the open window: no-op
        assert registry.window_snapshots == before


class TestWindowSnapshot:
    def test_as_dict_sorted(self):
        snap = WindowSnapshot(start=0.0, end=10.0, values={"b": 1.0, "a": 2.0})
        rendered = snap.as_dict()
        assert list(rendered["values"]) == ["a", "b"]
        assert rendered["start"] == 0.0
        assert rendered["end"] == 10.0


class TestSchedulerHygieneGauges:
    """``GuessSimulation.report()`` exports the engine's tombstone
    telemetry (satellite of the timing-wheel PR) into the registry."""

    @pytest.mark.parametrize("scheduler", ["heap", "wheel"])
    def test_report_sets_engine_gauges(self, scheduler):
        from repro.core.network_sim import GuessSimulation
        from repro.core.params import ProtocolParams, SystemParams
        from repro.observe.plan import ObservationPlan

        sim = GuessSimulation(
            SystemParams(network_size=40),
            ProtocolParams(cache_size=10),
            seed=5,
            observe=ObservationPlan(registry=True),
            scheduler=scheduler,
        )
        sim.run(60.0)
        sim.report()
        totals = sim.metrics_registry.snapshot()
        assert totals["engine_pending"] == sim.engine.pending
        assert totals["engine_tombstones"] == sim.engine.tombstones
        assert totals["engine_cancelled_ratio"] == sim.engine.cancelled_ratio
        assert totals["engine_compactions"] == sim.engine.compactions
        assert 0.0 <= totals["engine_cancelled_ratio"] <= 1.0
