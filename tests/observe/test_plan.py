"""Tests for ObservationPlan validation and the from_plan no-op contract."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigError
from repro.observe.plan import Observation, ObservationPlan
from repro.observe.registry import MetricsRegistry
from repro.observe.spans import SpanRecorder


class TestObservationPlan:
    def test_defaults_are_noop(self):
        assert ObservationPlan().is_noop()

    def test_any_observer_clears_noop(self):
        assert not ObservationPlan(spans=True).is_noop()
        assert not ObservationPlan(registry=True).is_noop()

    def test_bad_span_capacity_rejected(self):
        with pytest.raises(ConfigError):
            ObservationPlan(spans=True, span_capacity=0)

    def test_bad_registry_window_rejected(self):
        with pytest.raises(ConfigError):
            ObservationPlan(registry=True, registry_window=-1.0)

    def test_plan_is_picklable(self):
        # Frozen + scalar fields: safe to ship across process boundaries.
        plan = ObservationPlan(spans=True, registry=True, registry_window=5.0)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestFromPlan:
    def test_none_plan_resolves_to_none(self):
        assert Observation.from_plan(None) is None

    def test_noop_plan_resolves_to_none(self):
        assert Observation.from_plan(ObservationPlan()) is None

    def test_spans_only(self):
        observation = Observation.from_plan(
            ObservationPlan(spans=True, span_capacity=8)
        )
        assert isinstance(observation.spans, SpanRecorder)
        assert observation.spans.capacity == 8
        assert observation.registry is None

    def test_registry_only(self):
        observation = Observation.from_plan(
            ObservationPlan(registry=True, registry_window=25.0)
        )
        assert observation.spans is None
        assert isinstance(observation.registry, MetricsRegistry)
        assert observation.registry.window == 25.0

    def test_both(self):
        observation = Observation.from_plan(
            ObservationPlan(spans=True, registry=True)
        )
        assert observation.spans is not None
        assert observation.registry is not None
        assert observation.registry.window is None
